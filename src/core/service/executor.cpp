#include "core/service/executor.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "core/service/fingerprint.hpp"

namespace nk::service {

SolveExecutor::SolveExecutor(ExecutorConfig cfg)
    : cache_(cfg.cache_capacity), cfg_(cfg), paused_(cfg.start_paused) {
  cfg_.threads = std::max(1, cfg_.threads);
  cfg_.max_batch = std::max(1, cfg_.max_batch);
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int t = 0; t < cfg_.threads; ++t) workers_.emplace_back([this] { worker_loop(); });
}

SolveExecutor::~SolveExecutor() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;  // drain-then-stop: queued columns still complete
    paused_ = false;   // a paused executor must still drain on teardown
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::vector<std::future<ColumnOutcome>> SolveExecutor::submit(
    std::uint64_t handle, std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec,
    std::vector<std::vector<double>> columns, std::uint64_t request_id) {
  const std::string key = fingerprint_hex(handle) + "|" + spec.to_string();
  std::vector<std::future<ColumnOutcome>> futures;
  futures.reserve(columns.size());
  {
    const std::lock_guard<std::mutex> lk(mu_);
    KeyQueue& q = queues_[key];
    if (!q.problem) {
      q.handle = handle;
      q.problem = std::move(p);
      q.spec = spec;
    }
    for (std::vector<double>& b : columns) {
      Column c;
      c.b = std::move(b);
      c.request_id = request_id;
      futures.push_back(c.promise.get_future());
      q.pending.push_back(std::move(c));
    }
  }
  cv_.notify_all();
  return futures;
}

void SolveExecutor::resume() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SolveExecutor::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (paused_) {
      cv_.wait(lk);
      continue;
    }
    // Claim the first key with pending work that no other worker owns.
    auto claimed = queues_.end();
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      if (!it->second.in_flight && !it->second.pending.empty()) {
        claimed = it;
        break;
      }
    }
    if (claimed == queues_.end()) {
      if (stopping_) return;
      cv_.wait(lk);
      continue;
    }

    KeyQueue& q = claimed->second;
    q.in_flight = true;
    // Merge up to max_batch pending columns — whatever requests they came
    // from — into one batched solve.
    const std::size_t take =
        std::min(q.pending.size(), static_cast<std::size_t>(cfg_.max_batch));
    std::vector<Column> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(q.pending.front()));
      q.pending.pop_front();
    }
    const std::string key = claimed->first;

    lk.unlock();
    run_batch(q, std::move(batch));
    lk.lock();

    q.in_flight = false;
    if (q.pending.empty()) {
      queues_.erase(key);
    } else {
      // More columns arrived while we solved; let any idle worker
      // (including us, next loop) claim the key again.
      cv_.notify_all();
    }
  }
}

void SolveExecutor::run_batch(KeyQueue& q, std::vector<Column> batch) {
  const int k = static_cast<int>(batch.size());
  const std::size_t n = q.problem->b.size();
  std::vector<SolveResult> results;
  std::vector<double> X;
  try {
    SessionCache::Lease lease = cache_.lease(q.handle, q.problem, q.spec);
    std::vector<double> B(static_cast<std::size_t>(k) * n);
    for (int c = 0; c < k; ++c)
      std::copy(batch[static_cast<std::size_t>(c)].b.begin(),
                batch[static_cast<std::size_t>(c)].b.end(),
                B.begin() + static_cast<std::size_t>(c) * n);
    X.assign(static_cast<std::size_t>(k) * n, 0.0);
    results = lease.session().solve_many(B, X, k);
  } catch (const std::exception& e) {
    // Session construction failed (unknown kind slipping past the server's
    // spec validation): fail every column structurally, poison nothing.
    SolveResult r;
    r.fail(SolveStatus::kInvalidInput, std::string("session: ") + e.what());
    for (Column& c : batch) {
      ColumnOutcome out;
      out.result = r;
      out.x.assign(n, 0.0);
      c.promise.set_value(std::move(out));
    }
    return;
  }

  // Record stats BEFORE fulfilling any promise: a caller that observes a
  // completed future must also observe its batch in the counters.
  {
    std::set<std::uint64_t> requests;
    for (const Column& c : batch) requests.insert(c.request_id);
    const std::lock_guard<std::mutex> slk(mu_);
    stats_.columns += static_cast<std::uint64_t>(k);
    stats_.batches += 1;
    if (requests.size() > 1) stats_.merged_batches += 1;
    stats_.widest_batch = std::max(stats_.widest_batch, k);
  }

  for (int c = 0; c < k; ++c) {
    ColumnOutcome out;
    out.result = std::move(results[static_cast<std::size_t>(c)]);
    out.x.assign(X.begin() + static_cast<std::size_t>(c) * n,
                 X.begin() + static_cast<std::size_t>(c + 1) * n);
    batch[static_cast<std::size_t>(c)].promise.set_value(std::move(out));
  }
}

SolveExecutor::Stats SolveExecutor::stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace nk::service
