// Matrix fingerprinting — the cache key of the solver service.
//
// nkrylovd caches prepared problems (scaling, multi-precision stores,
// format conversion) and Sessions (preconditioner factorization, solver
// workspaces) across client requests.  The key is a 64-bit FNV-1a hash of
// the matrix a client uploads — dimensions, structure, values, and the
// symmetry flag — so two clients PUTting the same system share one handle
// and the second one pays nothing for setup.  Server-generated stand-in
// matrices are keyed by their generator coordinates (name, scale) instead,
// so a repeat PUTGEN does not even pay generation.
//
// FNV-1a over the raw little-endian bytes is deliberate: the daemon and
// its clients share one machine (Unix-domain socket), so byte-identical
// input data IS the equality we want — no canonicalization pass, no
// tolerance.  A hash collision between distinct matrices is accepted at
// the usual 2^-64 odds, like every content-addressed cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sparse/csr.hpp"

namespace nk::service {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Fold `bytes` raw bytes into a running FNV-1a state.
[[nodiscard]] inline std::uint64_t fingerprint_mix(const void* data, std::size_t bytes,
                                                   std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Fingerprint of a client-supplied CSR matrix (+ its symmetry claim —
/// the same values solved as SPD and as general are different problems).
[[nodiscard]] std::uint64_t matrix_fingerprint(const CsrMatrix<double>& a, bool symmetric);

/// Fingerprint of a server-generated stand-in, keyed by generator
/// coordinates so repeat PUTGENs skip generation entirely.
[[nodiscard]] std::uint64_t standin_fingerprint(const std::string& name, int scale);

/// Canonical 16-digit lower-case hex form (the wire/handle spelling).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

/// Strict inverse of fingerprint_hex: exactly 1–16 lower/upper hex digits,
/// no sign, no prefix, no trailing garbage.  Returns false on anything else.
[[nodiscard]] bool parse_fingerprint_hex(std::string_view text, std::uint64_t& out);

}  // namespace nk::service
