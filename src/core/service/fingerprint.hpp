// Compatibility header: matrix fingerprinting moved to core/fingerprint.hpp
// (PR 10 hoisted it out of the service layer so library-only builds can
// fingerprint matrices — the autotuner's perf-DB keys on it).  The daemon
// and its tests keep speaking nk::service::matrix_fingerprint through the
// aliases below; new code should include core/fingerprint.hpp directly.
#pragma once

#include "core/fingerprint.hpp"

namespace nk::service {

using nk::kFnvOffset;
using nk::kFnvPrime;
using nk::fingerprint_mix;
using nk::matrix_fingerprint;
using nk::standin_fingerprint;
using nk::fingerprint_hex;
using nk::parse_fingerprint_hex;

}  // namespace nk::service
