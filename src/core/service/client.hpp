// Thin synchronous client for nkrylovd.  One Client is one connection;
// it is NOT thread-safe (the wire is a strict request/reply stream) —
// concurrency comes from many clients, which is exactly what the daemon
// is for.  Server-side ERR replies surface as ProtocolError carrying the
// wire error code; transport failures as std::runtime_error.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/service/io.hpp"
#include "core/service/protocol.hpp"
#include "sparse/csr.hpp"

namespace nk::service {

class Client {
 public:
  /// Connect to a daemon at `socket_path`; throws std::runtime_error when
  /// nothing listens there.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// HELLO — returns the server banner ("nkrylovd 1").
  std::string hello();

  struct Handle {
    std::uint64_t handle = 0;
    std::int64_t n = 0;
    std::int64_t nnz = 0;
    bool cached = false;  ///< the daemon already had this problem prepared
  };
  /// Upload a matrix (PUT).  `a` must be square CSR with sorted rows.
  Handle put_matrix(const CsrMatrix<double>& a, bool symmetric);
  /// Ask the daemon to generate a Table 2 stand-in (PUTGEN).
  Handle put_standin(const std::string& name, int scale);

  struct SolveReply {
    std::vector<WireColumn> columns;  ///< per-column structured outcomes
    std::vector<double> x;            ///< k columns of n, column-contiguous
    std::int64_t n = 0;
  };
  /// SOLVE k right-hand sides (B column-contiguous, size k*n) under `spec`.
  SolveReply solve(std::uint64_t handle, const std::string& spec,
                   std::span<const double> B, int k, std::int64_t n);

  /// STATS — the daemon's counters, parsed into key=value pairs.
  std::map<std::string, std::uint64_t> stats();

  /// FREE — drop a handle on the server.
  void free_handle(std::uint64_t handle);

  /// SHUTDOWN — ask the daemon to exit (it still drains queued work).
  void shutdown_server();

  /// Escape hatch for protocol tests: send one raw header line, return
  /// the one reply line.  The caller owns stream-sync consequences.
  std::string request_raw(const std::string& line);

 private:
  /// Read one reply line; throws ProtocolError on "ERR <code> <msg>".
  std::string read_reply();
  Handle parse_handle_reply(const std::string& line);

  int fd_ = -1;
  BufferedReader in_;
};

}  // namespace nk::service
