// Minimal blocking socket I/O shared by the daemon and the thin client:
// a buffered reader that serves '\n'-terminated header lines AND the
// binary payloads that follow them from one buffer (so a payload byte is
// never lost to line buffering), and an EINTR-safe write_all.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nk::service {

/// Write exactly `bytes` bytes to `fd`; false on any error / closed peer.
bool write_all(int fd, const void* data, std::size_t bytes);

/// Convenience: a header line + '\n'.
bool write_line(int fd, const std::string& line);

class BufferedReader {
 public:
  explicit BufferedReader(int fd) : fd_(fd) {}

  /// Read up to the next '\n' (not included).  False on EOF/error before
  /// a full line arrived.  Lines longer than `kMaxLine` fail the read —
  /// header lines are small by construction.
  bool read_line(std::string& out);

  /// Read exactly `bytes` bytes (a binary payload), buffer first.
  bool read_exact(void* data, std::size_t bytes);

  static constexpr std::size_t kMaxLine = 1 << 16;

 private:
  bool refill();  ///< false on EOF or error

  int fd_;
  std::vector<char> buf_ = std::vector<char>(1 << 16);
  std::size_t begin_ = 0;  ///< first unconsumed byte in buf_
  std::size_t end_ = 0;    ///< one past last valid byte in buf_
};

}  // namespace nk::service
