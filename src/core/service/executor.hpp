// SolveExecutor — the daemon's async solve engine.
//
// Every client SOLVE request is split into columns and queued under the
// request's (matrix, spec) key.  A fixed pool of worker threads drains
// those queues; when a worker claims a key it takes up to `max_batch`
// pending columns AT ONCE — from however many client requests happen to
// be waiting — leases the key's cached Session, and runs one solve_many
// over the merged batch.  That is the paper's batched-kernel economics
// applied across clients: ten clients solving the same matrix at once
// cost one wave-scheduled batched solve, not ten scalar solves, and the
// ragged-wave scheduler (";wave=N" in the spec) refills freed slots as
// columns converge at different rates.
//
// Isolation comes from the PR 7 resilience layer, not from screening:
// a poisoned column (NaN RHS, injected faults) is retired by the engine
// with a structured per-column status while the other columns of the
// SAME batch — possibly other clients' — converge bit-identically to a
// solo solve.  The executor never inspects RHS values.
//
// Keys never contend: each key is in flight on at most one worker at a
// time (the cached Session is single-solver-at-a-time), while distinct
// keys solve fully in parallel.  Shutdown drains: the destructor stops
// intake, finishes every queued column, then joins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/service/session_cache.hpp"

namespace nk::service {

struct ExecutorConfig {
  int threads = 2;                  ///< worker pool size
  int max_batch = 32;               ///< max columns merged into one solve_many
  std::size_t cache_capacity = 32;  ///< resident Session bound (SessionCache)
  /// Hold the workers until resume(): lets a caller queue many requests
  /// and have them meet in shared waves deterministically (tests, warm-up
  /// bulk loads).  The destructor still drains a paused executor.
  bool start_paused = false;
};

/// What one submitted column resolves to: its structured SolveResult and
/// the solution vector (length n).
struct ColumnOutcome {
  SolveResult result;
  std::vector<double> x;
};

class SolveExecutor {
 public:
  explicit SolveExecutor(ExecutorConfig cfg = {});
  ~SolveExecutor();  ///< drains every queued column, then joins the pool
  SolveExecutor(const SolveExecutor&) = delete;
  SolveExecutor& operator=(const SolveExecutor&) = delete;

  /// Queue one request's columns (each of length n = p->b.size(); the
  /// caller has already validated sizes) for the (handle, spec) key.
  /// `request_id` tags the columns so the stats can count how often a
  /// batch merged columns from different requests.  Returns one future
  /// per column, fulfilled when its batch completes.
  /// Release workers held by ExecutorConfig::start_paused (idempotent).
  void resume();

  std::vector<std::future<ColumnOutcome>> submit(std::uint64_t handle,
                                                 std::shared_ptr<const PreparedProblem> p,
                                                 const SolverSpec& spec,
                                                 std::vector<std::vector<double>> columns,
                                                 std::uint64_t request_id);

  struct Stats {
    std::uint64_t columns = 0;        ///< columns solved
    std::uint64_t batches = 0;        ///< solve_many calls issued
    std::uint64_t merged_batches = 0; ///< batches that merged >1 client request
    int widest_batch = 0;             ///< max columns in one solve_many
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] SessionCache& sessions() { return cache_; }
  [[nodiscard]] const SessionCache& sessions() const { return cache_; }

 private:
  struct Column {
    std::vector<double> b;
    std::promise<ColumnOutcome> promise;
    std::uint64_t request_id = 0;
  };
  /// One (matrix, spec) queue; `in_flight` serializes workers per key.
  struct KeyQueue {
    std::uint64_t handle = 0;
    std::shared_ptr<const PreparedProblem> problem;
    SolverSpec spec;
    std::deque<Column> pending;
    bool in_flight = false;
  };

  void worker_loop();
  void run_batch(KeyQueue& q, std::vector<Column> batch);

  SessionCache cache_;
  ExecutorConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, KeyQueue> queues_;
  bool stopping_ = false;
  bool paused_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace nk::service
