// The daemon's two caches: prepared problems keyed by matrix fingerprint,
// and Sessions keyed by (fingerprint, spec).
//
// The whole point of nkrylovd is that SETUP is the expensive part of a
// Krylov solve (diagonal scaling, multi-precision stores, preconditioner
// factorization, workspace slabs — the PR 3 setup/solve split), so repeat
// clients must never re-pay it:
//
//   ProblemTable   fingerprint -> PreparedProblem.  A client PUTting a
//                  matrix the daemon has already prepared gets the cached
//                  handle back before any preparation work; a repeat
//                  PUTGEN skips even generation (keyed by generator
//                  coordinates, see fingerprint.hpp).
//
//   SessionCache   (fingerprint, spec.to_string()) -> Session, leased one
//                  client at a time.  A Session is single-solver-at-a-time
//                  (session.hpp's concurrency contract), so the cache
//                  hands out RAII leases that hold the per-entry lock:
//                  concurrent requests for the SAME (matrix, spec) pair
//                  serialize on one Session and share its factorization;
//                  requests for different pairs run fully in parallel.
//                  Capacity-bounded with idle-only LRU eviction: an entry
//                  whose lock is held (a solve in flight) is never evicted.
//
// Both caches publish hit/miss/eviction counters — the numbers the bench
// and the acceptance tests use to PROVE repeat clients pay zero setup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/session.hpp"

namespace nk::service {

class ProblemTable {
 public:
  struct PutOutcome {
    std::uint64_t handle = 0;
    std::shared_ptr<const PreparedProblem> problem;
    bool cached = false;  ///< true: the prepared problem was already resident
  };

  /// Fingerprint the RAW client matrix, then prepare only on a miss — a
  /// cache hit returns before sort/scale/multi-precision conversion.
  /// Concurrent puts of the same new matrix serialize on a per-handle
  /// latch: exactly ONE pays preparation, the rest wait and count as hits.
  PutOutcome put_matrix(CsrMatrix<double> a, bool symmetric);

  /// Same, keyed by generator coordinates: a repeat PUTGEN skips
  /// generation itself, not just preparation.  Throws (gen::make_problem)
  /// on unknown stand-in names.
  PutOutcome put_standin(const std::string& name, int scale);

  /// nullptr when the handle is unknown (never issued, or freed).
  [[nodiscard]] std::shared_ptr<const PreparedProblem> find(std::uint64_t handle) const;

  /// Drop a handle; false if it was not resident.  In-flight solves keep
  /// the problem alive through their own shared_ptr.
  bool erase(std::uint64_t handle);

  struct Stats {
    std::uint64_t hits = 0;    ///< PUT/PUTGEN that found the problem resident
    std::uint64_t misses = 0;  ///< PUT/PUTGEN that paid preparation
    std::size_t resident = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// One problem slot; `mu` is the anti-stampede latch — the first
  /// arrival prepares under it, concurrent arrivals block and then read.
  struct Slot {
    std::mutex mu;
    std::shared_ptr<const PreparedProblem> problem;  ///< set once, under `mu`
  };
  template <class Build>
  PutOutcome put(std::uint64_t fp, Build&& build);

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Slot>> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class SessionCache {
 public:
  /// `capacity` bounds RESIDENT sessions; leases beyond it are still
  /// granted (eviction only reclaims idle entries, never blocks a client).
  explicit SessionCache(std::size_t capacity = 32) : capacity_(capacity) {}

  class Lease;

  /// Lease the Session for (handle, spec), building it on first use.
  /// Blocks while another client holds the same Session; distinct
  /// (handle, spec) pairs never contend.  Construction failures (unknown
  /// solver/precond kinds) propagate to the caller and leave no broken
  /// entry behind.
  [[nodiscard]] Lease lease(std::uint64_t handle, std::shared_ptr<const PreparedProblem> p,
                            const SolverSpec& spec);

  struct Stats {
    std::uint64_t hits = 0;       ///< lease found a built Session (setup skipped)
    std::uint64_t misses = 0;     ///< lease had to build a Session
    std::uint64_t evictions = 0;  ///< idle sessions reclaimed by capacity
    std::size_t resident = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::mutex mu;                     ///< the lease; held for the whole solve
    std::unique_ptr<Session> session;  ///< built lazily under `mu`
    std::uint64_t last_used = 0;       ///< LRU tick, guarded by the cache mutex
  };

  void evict_idle_locked(const std::string& keep_key);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;

 public:
  /// Movable RAII lease: exclusive use of one cached Session.  The entry
  /// lock is held until destruction; the shared_ptr keeps the Session
  /// alive even if capacity pressure evicts it from the map meanwhile.
  class Lease {
   public:
    Lease(std::shared_ptr<Entry> e, std::unique_lock<std::mutex> lk)
        : entry_(std::move(e)), lock_(std::move(lk)) {}
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) noexcept = default;
    [[nodiscard]] Session& session() { return *entry_->session; }
    /// True when this lease had to build the Session (a cache miss).
    [[nodiscard]] bool built() const { return built_; }

   private:
    friend class SessionCache;
    std::shared_ptr<Entry> entry_;
    std::unique_lock<std::mutex> lock_;
    bool built_ = false;
  };
};

}  // namespace nk::service
