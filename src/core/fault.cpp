#include "core/fault.hpp"

#include "core/registry.hpp"
#include "core/spec.hpp"

namespace nk {

namespace {

FaultSpec::Kind parse_kind(const std::string& tok) {
  if (tok == "nan") return FaultSpec::Kind::kNan;
  if (tok == "inf") return FaultSpec::Kind::kInf;
  if (tok == "huge") return FaultSpec::Kind::kHuge;
  if (tok == "bitflip") return FaultSpec::Kind::kBitFlip;
  throw SpecError("unknown fault kind: '" + tok + "' (expected nan|inf|huge|bitflip)");
}

const char* kind_name(FaultSpec::Kind k) {
  switch (k) {
    case FaultSpec::Kind::kNan: return "nan";
    case FaultSpec::Kind::kInf: return "inf";
    case FaultSpec::Kind::kHuge: return "huge";
    case FaultSpec::Kind::kBitFlip: return "bitflip";
  }
  return "?";
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  const auto bad = [&](const std::string& why) {
    return SpecError("bad fault schedule '" + text + "': " + why +
                     " (expected kind@index[@prec], e.g. nan@3 or inf@0@fp16)");
  };
  const std::size_t a1 = text.find('@');
  if (a1 == std::string::npos) throw bad("missing '@index'");
  FaultSpec f;
  f.kind = parse_kind(text.substr(0, a1));
  const std::size_t a2 = text.find('@', a1 + 1);
  const std::string idx =
      text.substr(a1 + 1, a2 == std::string::npos ? std::string::npos : a2 - a1 - 1);
  if (idx.empty() || idx.find_first_not_of("0123456789") != std::string::npos)
    throw bad("apply index must be a non-negative integer, got '" + idx + "'");
  try {
    f.at = std::stoi(idx);
  } catch (const std::exception&) {
    throw bad("apply index out of range: '" + idx + "'");
  }
  if (a2 != std::string::npos) {
    try {
      f.only = parse_prec(text.substr(a2 + 1));
    } catch (const std::invalid_argument& e) {
      throw bad(e.what());
    }
  }
  return f;
}

std::string FaultSpec::to_string() const {
  std::string s = std::string(kind_name(kind)) + "@" + std::to_string(at);
  if (only.has_value()) s += std::string("@") + prec_name(*only);
  return s;
}

void register_fault_injection() {
  PrecondKindInfo info;
  info.kind = "fault";
  info.summary = "fault-injection wrapper (test-only): ;inner= names the wrapped kind, "
                 ";inject= the schedule";
  info.conformance = false;
  registry().add_precond(info, [](const PrecondSpec& spec, const PreparedProblem& p) {
    if (spec.inject.empty())
      throw SpecError("precond kind 'fault' requires ;inject=kind@index[@prec]");
    const FaultSpec f = FaultSpec::parse(spec.inject);
    PrecondSpec in = spec;
    in.kind = spec.inner.empty() ? "bj" : spec.inner;
    in.inject.clear();
    in.inner.clear();
    return std::make_shared<FaultyPrimary>(registry().make_precond(in, p), f);
  });
}

}  // namespace nk
