// Fault-injection harness for the resilience layer (test-only).
//
// The guards and the Session fallback ladder claim to turn silent data
// corruption into structured SolveStatus values; this harness is how the
// tests prove it.  FaultyOperator / FaultyPreconditioner decorate the
// existing Operator<VT> / Preconditioner<VT> interfaces and corrupt one
// element of their output at a scheduled apply index — NaN, Inf, a huge
// finite value, or a bit flip — so every injection site a solver actually
// exercises (SpMV, preconditioner apply, batched panels) can be poisoned
// deterministically.
//
// FaultyPrimary lifts the same schedule to the PrimaryPrecond level and
// filters it by the minted handle's STORAGE precision: "nan@3@fp16" fires
// only on fp16-storage handles, so a ";fallback=fp32,fp64" escalation that
// re-mints M at fp32 genuinely escapes the fault — the recovery path the
// acceptance tests pin.
//
// register_fault_injection() installs a "fault" preconditioner kind in the
// process registry (inner kind from PrecondSpec::inner, schedule from
// PrecondSpec::inject).  It is called by tests only — never from
// register_builtin_kinds — so the kind cannot leak into the conformance
// catalog or production spec strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "base/half.hpp"
#include "krylov/operator.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

/// One scheduled fault: what to corrupt, at which apply, and (optionally)
/// only on handles of which storage precision.
struct FaultSpec {
  enum class Kind : std::uint8_t { kNan = 0, kInf, kHuge, kBitFlip };

  Kind kind = Kind::kNan;
  int at = 0;                ///< 0-based apply index that gets poisoned
  std::optional<Prec> only;  ///< fire only on handles minted at this storage

  /// Parse "kind@index[@prec]" — "nan@3", "bitflip@0@fp16".  Kinds: nan,
  /// inf, huge, bitflip.  Throws nk::SpecError.
  static FaultSpec parse(const std::string& text);
  /// Canonical text form; parse(to_string()) reproduces *this exactly.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const FaultSpec&) const = default;
};

namespace fault_detail {

inline double huge_of(double) { return 1e300; }
inline float huge_of(float) { return 1e30f; }
inline half huge_of(half) { return static_cast<half>(6.0e4f); }

/// Flip the exponent MSB — the classic single-event-upset model.  Near-1
/// values become Inf/NaN-range, exact zeros become small finite numbers;
/// either way the corruption is deterministic for a given input.
template <class T>
T bit_flipped(T v) {
  if constexpr (sizeof(T) == 8) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    b ^= std::uint64_t{1} << 62;
    std::memcpy(&v, &b, sizeof(b));
  } else if constexpr (sizeof(T) == 4) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    b ^= std::uint32_t{1} << 30;
    std::memcpy(&v, &b, sizeof(b));
  } else {
    static_assert(sizeof(T) == 2);
    std::uint16_t b;
    std::memcpy(&b, &v, sizeof(b));
    b ^= std::uint16_t{1} << 14;
    std::memcpy(&v, &b, sizeof(b));
  }
  return v;
}

template <class T>
T poison_value(FaultSpec::Kind k, T prev) {
  switch (k) {
    case FaultSpec::Kind::kNan:
      return static_cast<T>(std::numeric_limits<double>::quiet_NaN());
    case FaultSpec::Kind::kInf:
      return static_cast<T>(std::numeric_limits<double>::infinity());
    case FaultSpec::Kind::kHuge: return huge_of(T{});
    case FaultSpec::Kind::kBitFlip: return bit_flipped(prev);
  }
  return prev;
}

}  // namespace fault_detail

/// Decorates a Preconditioner<VT>: at the `fault.at`-th apply (each batched
/// call counts as one apply; every column is poisoned), element 0 of the
/// output is corrupted.  Counting is per-decorator, so the schedule is
/// deterministic per minted handle.
template <class VT>
class FaultyPreconditioner final : public Preconditioner<VT> {
 public:
  FaultyPreconditioner(std::unique_ptr<Preconditioner<VT>> inner, FaultSpec fault)
      : inner_(std::move(inner)), fault_(fault) {}

  void apply(std::span<const VT> r, std::span<VT> z) override {
    inner_->apply(r, z);
    if (fires()) poison(&z[0]);
  }
  void apply_many(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                  int k) override {
    inner_->apply_many(r, ldr, z, ldz, k);
    if (fires())
      for (int c = 0; c < k; ++c) poison(z + static_cast<std::ptrdiff_t>(c) * ldz);
  }
  void apply_many_layout(const VT* r, std::ptrdiff_t ldr, VT* z, std::ptrdiff_t ldz,
                         int k, PanelLayout layout) override {
    inner_->apply_many_layout(r, ldr, z, ldz, k, layout);
    if (fires())
      for (int c = 0; c < k; ++c)
        poison(layout == PanelLayout::kRowMajor
                   ? z + static_cast<std::ptrdiff_t>(c) * ldz
                   : z + c);
  }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

 private:
  bool fires() { return n_applies_++ == fault_.at; }
  void poison(VT* e0) { *e0 = fault_detail::poison_value(fault_.kind, *e0); }

  std::unique_ptr<Preconditioner<VT>> inner_;
  FaultSpec fault_;
  int n_applies_ = 0;
};

/// Decorates an Operator<VT> the same way: the scheduled apply (SpMV,
/// residual, or batched variant — each call is one tick) has element 0 of
/// every output column corrupted.
template <class VT>
class FaultyOperator final : public Operator<VT> {
 public:
  FaultyOperator(std::unique_ptr<Operator<VT>> inner, FaultSpec fault)
      : inner_(std::move(inner)), fault_(fault) {}

  void apply(std::span<const VT> x, std::span<VT> y) override {
    inner_->apply(x, y);
    if (fires()) poison(&y[0]);
  }
  void residual(std::span<const VT> b, std::span<const VT> x, std::span<VT> r) override {
    inner_->residual(b, x, r);
    if (fires()) poison(&r[0]);
  }
  void apply_many(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                  int k) override {
    inner_->apply_many(x, ldx, y, ldy, k);
    if (fires())
      for (int c = 0; c < k; ++c) poison(y + static_cast<std::ptrdiff_t>(c) * ldy);
  }
  void residual_many(const VT* b, std::ptrdiff_t ldb, const VT* x, std::ptrdiff_t ldx,
                     VT* r, std::ptrdiff_t ldr, int k) override {
    inner_->residual_many(b, ldb, x, ldx, r, ldr, k);
    if (fires())
      for (int c = 0; c < k; ++c) poison(r + static_cast<std::ptrdiff_t>(c) * ldr);
  }
  void apply_many_layout(const VT* x, std::ptrdiff_t ldx, VT* y, std::ptrdiff_t ldy,
                         int k, PanelLayout lx, PanelLayout ly) override {
    inner_->apply_many_layout(x, ldx, y, ldy, k, lx, ly);
    if (fires())
      for (int c = 0; c < k; ++c)
        poison(ly == PanelLayout::kRowMajor ? y + static_cast<std::ptrdiff_t>(c) * ldy
                                            : y + c);
  }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

 private:
  bool fires() { return n_applies_++ == fault_.at; }
  void poison(VT* e0) { *e0 = fault_detail::poison_value(fault_.kind, *e0); }

  std::unique_ptr<Operator<VT>> inner_;
  FaultSpec fault_;
  int n_applies_ = 0;
};

/// PrimaryPrecond decorator: mints the inner kind's handles and wraps each
/// one whose storage precision matches `fault.only` (all storages when
/// unset) in a FaultyPreconditioner.  Precision filtering is what lets the
/// ";fallback=" escalation tests recover: re-minting M at a higher storage
/// precision leaves the fault behind.
class FaultyPrimary final : public PrimaryPrecond {
 public:
  FaultyPrimary(std::shared_ptr<PrimaryPrecond> inner, FaultSpec fault)
      : inner_(std::move(inner)), fault_(fault) {}

  [[nodiscard]] std::string name() const override {
    return "fault(" + inner_->name() + ")";
  }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec storage) override {
    return wrap<double>(storage);
  }
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec storage) override {
    return wrap<float>(storage);
  }
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec storage) override {
    return wrap<half>(storage);
  }

 private:
  template <class VT>
  std::unique_ptr<Preconditioner<VT>> wrap(Prec storage) {
    auto handle = inner_->template make_apply<VT>(storage);
    if (fault_.only.has_value() && *fault_.only != storage) return handle;
    return std::make_unique<FaultyPreconditioner<VT>>(std::move(handle), fault_);
  }

  std::shared_ptr<PrimaryPrecond> inner_;
  FaultSpec fault_;
};

/// Installs the test-only "fault" preconditioner kind in the process
/// registry: PrecondSpec::inner names the wrapped kind ("" = "bj") and
/// PrecondSpec::inject the schedule ("nan@3@fp16").  Idempotent (the
/// registry's last-wins rule).  NEVER called by register_builtin_kinds.
void register_fault_injection();

}  // namespace nk
