// Legacy experiment-runner entry points — thin shims over the descriptor
// layer (core/spec.hpp + core/registry.hpp + core/session.hpp).
//
// Every run_* function below now builds a SolverSpec and drives it through
// nk::Session; they are kept this PR for API stability and produce
// bit-identical results to their pre-descriptor implementations (the
// conformance baseline pins this).  New code should construct solvers from
// specs instead:
//
//   old                                         new
//   ----------------------------------------    -----------------------------
//   run_cg(p, m, Prec::FP16, caps)              Session(p, parse("cg@fp16"), borrow_precond(m)).solve()
//   run_bicgstab(p, m, Prec::FP32)              Session(p, parse("bicgstab@fp32"), ...)
//   run_fgmres_restarted(p, m, st, 64)          Session(p, parse("fgmres64"), ...)
//   run_ir_gmres(p, m, Prec::FP16, 8)           Session(p, parse("ir-gmres8@fp16"), ...)
//   run_nested(p, m, f3r_config(Prec::FP16))    Session(p, parse("f3r@fp16"), m).solve()
//   run_cg_many(..., wave)                      Session(p, parse("cg;wave=N"), ...).solve_many(B, X, k)
//   make_primary(p, PrecondKind::Jacobi)        registry().make_precond(parse_precond_spec("jacobi"), p)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/f3r.hpp"
#include "core/nested_builder.hpp"
#include "core/problem.hpp"
#include "core/session.hpp"
#include "krylov/history.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

/// \deprecated Use PrecondSpec kinds ("bj", "sd-ainv", "jacobi") with
/// registry().make_precond instead.
enum class PrecondKind { BlockJacobiIluIc, SdAinv, Jacobi };

/// Build the paper's primary preconditioner for a prepared problem:
/// block-Jacobi ILU(0)/IC(0) with α_ILU on the CPU node, SD-AINV with
/// α_AINV on the GPU node.
/// \deprecated Shim over registry().make_precond.
std::shared_ptr<PrimaryPrecond> make_primary(const PreparedProblem& p, PrecondKind kind,
                                             int nblocks = 0);

/// Caps matching the paper: 19,200 iterations for the flat Krylov solvers
/// (scaled down via `iteration_budget` for quick bench runs).
struct FlatSolverCaps {
  double rtol = 1e-8;
  int max_iters = 19200;
};

/// fp64 CG with the preconditioner stored at `storage` ("fp16-CG" = fp64 CG
/// with an fp16-stored preconditioner).
/// \deprecated Shim over Session("cg@<storage>").
SolveResult run_cg(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                   const FlatSolverCaps& caps = {});

/// fp64 BiCGStab with `storage`-precision preconditioner.
/// \deprecated Shim over Session("bicgstab@<storage>").
SolveResult run_bicgstab(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                         const FlatSolverCaps& caps = {});

/// fp64 restarted FGMRES(restart) with `storage`-precision preconditioner —
/// the paper's FGMRES(64) baseline.
/// \deprecated Shim over Session("fgmres<restart>@<storage>").
SolveResult run_fgmres_restarted(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                                 int restart = 64, const FlatSolverCaps& caps = {});

/// Conventional mixed-precision baseline: fp64 iterative refinement
/// (Richardson) outer with a low-precision GMRES(inner_m) inner solver —
/// the two-level scheme of the prior work the paper improves on
/// (Anzt et al. 2011; Lindquist et al. 2021).  `inner` selects the inner
/// solver's working precision (fp32 or fp16; matrix, vectors, and M all
/// stored at that precision).
/// \deprecated Shim over Session("ir-gmres<inner_m>@<inner>").
SolveResult run_ir_gmres(const PreparedProblem& p, PrimaryPrecond& m, Prec inner,
                         int inner_m = 8, const FlatSolverCaps& caps = {});

/// Any nested configuration (F3R and the Table 4 variants).
/// \deprecated Shim over Session's custom-NestedConfig constructor
/// (spec-expressible tuples: Session("f3r@fp16") etc.).
SolveResult run_nested(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                       const NestedConfig& cfg, const Termination& term = f3r_termination());

// ---------------------------------------------------------------------------
// Batched multi-RHS entry points.  B and X hold k columns of length n, column
// c contiguous at offset c·n.  Each returned SolveResult carries that
// column's iteration data and true final residual; `seconds`,
// `precond_invocations`, and `spmv_count` are BATCH totals (the work is
// shared across columns, so a per-column split would be fiction).
//
// The flat runners schedule the batch as ragged waves: `wave` > 0 caps the
// dispatch width, so an arbitrary RHS count runs as waves of at most that
// many columns in flight, with slots freed by retiring (converged / broken
// down / budget-exhausted) columns refilled from the pending queue at
// iteration boundaries.  One workspace sized for the wave serves the whole
// batch; `wave` = 0 dispatches all k at once.  (Waves are a feature of the
// default compacting scheduler — the masked A/B reference path ignores
// `wave`.)  Per column the iterates are bit-identical to a sequential
// solve either way (see CgSolver).
// ---------------------------------------------------------------------------

/// Batched fp64 CG: k systems in lockstep sharing every matrix sweep;
/// per column bit-identical to run_cg's solver on that RHS alone.
/// \deprecated Shim over Session("cg;wave=N").solve_many.
std::vector<SolveResult> run_cg_many(const PreparedProblem& p, PrimaryPrecond& m,
                                     Prec storage, std::span<const double> B,
                                     std::span<double> X, int k,
                                     const FlatSolverCaps& caps = {}, int wave = 0);

/// Batched fp64 BiCGStab (lockstep, shared matrix sweeps).
/// \deprecated Shim over Session("bicgstab;wave=N").solve_many.
std::vector<SolveResult> run_bicgstab_many(const PreparedProblem& p, PrimaryPrecond& m,
                                           Prec storage, std::span<const double> B,
                                           std::span<double> X, int k,
                                           const FlatSolverCaps& caps = {}, int wave = 0);

/// Batched nested solve: the tuple's setup (matrix copies, factorization,
/// level workspaces) is built once and shared; columns run in invocation
/// order (see NestedSolver::solve_many).
/// \deprecated Shim over Session(cfg, term, m).solve_many.
std::vector<SolveResult> run_nested_many(const PreparedProblem& p,
                                         std::shared_ptr<PrimaryPrecond> m,
                                         const NestedConfig& cfg, std::span<const double> B,
                                         std::span<double> X, int k,
                                         const Termination& term = f3r_termination());

/// Search the paper's fp16-F3R-best parameter box (m2 ∈ {6..10},
/// m3 ∈ {2..6}, m4 ∈ {1,2}) and return the fastest converged run plus its
/// parameters formatted "m2-m3-m4".  `budget` limits the number of
/// configurations tried (they are ordered by the memory-access model).
struct BestSearchResult {
  SolveResult result;
  F3rParams params;
  std::string param_label;
  int tried = 0;
};
BestSearchResult run_f3r_best(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                              double rtol = 1e-8, int budget = 12);

}  // namespace nk
