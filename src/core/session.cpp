#include "core/session.hpp"

#include <algorithm>
#include <iterator>

#include "base/backend.hpp"
#include "base/blas_block.hpp"
#include "base/env.hpp"

namespace nk {

namespace {

/// Resolution order: spec ";backend=" > NKRYLOV_BACKEND > host.  An
/// unknown environment value is never a silent fallback: it is recorded in
/// *err and every solve on the Session fails fast with kInvalidInput
/// ("backend: ...").  The default-when-unset sentinel is "host" so a SET
/// but empty NKRYLOV_BACKEND is rejected like any other unknown name.
Backend resolve_session_backend(const std::optional<Backend>& from_spec,
                                std::string* err) {
  if (from_spec.has_value()) return *from_spec;
  const std::string v = env_str("NKRYLOV_BACKEND", backend_name(Backend::kHost));
  const auto be = parse_backend(v);
  if (be.has_value()) return *be;
  *err = "backend: unknown NKRYLOV_BACKEND value '" + v +
         "' (known: " + std::string(backend_names()) + ")";
  return Backend::kHost;
}

/// The spec's `;layout=` option doubles as the session workspace default,
/// so solvers that resolve their layout from the workspace (nested tuples,
/// FGMRES gather panels) honor it too.  The resolved backend is likewise a
/// workspace property: every engine, handle, and operator minted for this
/// Session reads it from here (first-touch policy included).
std::unique_ptr<SolverWorkspace> make_session_workspace(const SolverSpec& spec,
                                                        std::string* backend_err) {
  auto ws = std::make_unique<SolverWorkspace>();
  if (spec.layout.has_value()) ws->set_panel_layout(*spec.layout);
  ws->set_backend(resolve_session_backend(spec.backend, backend_err));
  return ws;
}

/// The `;fallback=` ladder retries the causes a precision escalation can
/// plausibly cure.  kInvalidInput / kStagnated / kMaxIters are not among
/// them: bad inputs stay bad and budget exhaustion is policy, not damage.
bool retryable(const SolveResult& r) {
  return r.status == SolveStatus::kNonFinite || r.status == SolveStatus::kBreakdown;
}

std::string attempt_label(const SolveResult& r) {
  std::string s = r.solver + ": " + status_name(r.status);
  if (!r.failure.empty()) s += " (" + r.failure + ")";
  return s;
}

}  // namespace

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec)
    : p_(std::move(p)),
      spec_(spec),
      m_(registry().make_precond(spec.precond, *p_)),
      ws_(make_session_workspace(spec, &backend_err_)),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)),
      spec_(spec),
      m_(std::move(m)),
      ws_(make_session_workspace(spec, &backend_err_)),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, NestedConfig cfg,
                 const Termination& term, std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)), m_(std::move(m)), ws_(std::make_unique<SolverWorkspace>()) {
  spec_.kind = cfg.name;  // reporting only; not a registered kind
  // No spec to carry ";backend=" here, so the environment decides.
  ws_->set_backend(resolve_session_backend(std::nullopt, &backend_err_));
  engine_ = detail::make_nested_engine(*p_, m_, std::move(cfg), term, ws_.get());
}

Session::Session(std::shared_ptr<const PreparedProblem> p, const std::string& spec_text)
    : Session(std::move(p), SolverSpec::parse(spec_text)) {}

Session::Session(PreparedProblem p, const SolverSpec& spec)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec) {}

Session::Session(PreparedProblem p, const std::string& spec_text)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)),
              SolverSpec::parse(spec_text)) {}

Session::Session(PreparedProblem p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec, std::move(m)) {}

Session::Session(PreparedProblem p, NestedConfig cfg, const Termination& term,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), std::move(cfg), term,
              std::move(m)) {}

SolveResult Session::invalid_input(std::string why) const {
  SolveResult r;
  r.solver = engine_ != nullptr ? engine_->name() : spec_.kind;
  r.fail(SolveStatus::kInvalidInput, std::move(why));
  return r;
}

SolveResult Session::solve() {
  std::vector<double> x(p_->b.size(), 0.0);
  return solve(std::span<const double>(p_->b), std::span<double>(x));
}

SolveResult Session::solve(std::span<const double> b, std::span<double> x) {
  const SolveSlot slot(*in_solve_);
  if (!slot.claimed) return invalid_input("concurrent-use");
  return solve_impl(b, x);
}

SolveResult Session::solve_impl(std::span<const double> b, std::span<double> x) {
  if (!backend_err_.empty()) return invalid_input(backend_err_);
  const std::size_t n = p_->a ? static_cast<std::size_t>(p_->a->size()) : 0;
  if (n == 0) return invalid_input("empty-system");
  if (b.size() != n || x.size() != n) return invalid_input("size-mismatch");
  if (blas::has_nonfinite(std::span<const double>(b))) return invalid_input("non-finite-b");

  SolveResult res = engine_->solve(b, x);
  if (spec_.fallback.empty() || !retryable(res)) return res;

  // Precision-escalation ladder: retry the same prepared problem with the
  // precision axis raised to each listed level in turn.  M is re-minted at
  // the escalated precision (storage override cleared), and each attempt's
  // engine is built SEQUENTIALLY on the shared workspace — the previous
  // engine is destroyed first, so the grow-only slabs are simply reused
  // under the same keys (workspace.hpp's sequential-rebuild pattern).
  std::vector<std::string> attempts;
  for (Prec pr : spec_.fallback) {
    attempts.push_back(attempt_label(res));
    SolverSpec s = spec_;
    s.prec = pr;
    s.precond.storage.reset();
    s.fallback.clear();
    engine_.reset();
    engine_ = registry().make_solver(s, *p_, m_, ws_.get());
    // A poisoned iterate is not a usable initial guess.
    std::fill(x.begin(), x.end(), 0.0);
    res = engine_->solve(b, x);
    if (!retryable(res)) break;
  }
  // Restore the spec's own engine so later solves on this Session behave
  // as if no fallback had fired (same sequential slab reuse).
  engine_.reset();
  engine_ = registry().make_solver(spec_, *p_, m_, ws_.get());
  res.attempts = std::move(attempts);
  return res;
}

std::vector<SolveResult> Session::solve_many(std::span<const double> B,
                                             std::span<double> X, int k) {
  if (k <= 0) return {};
  const SolveSlot slot(*in_solve_);
  if (!slot.claimed)
    return std::vector<SolveResult>(static_cast<std::size_t>(k),
                                    invalid_input("concurrent-use"));
  if (!backend_err_.empty())
    return std::vector<SolveResult>(static_cast<std::size_t>(k),
                                    invalid_input(backend_err_));
  const std::size_t n = p_->a ? static_cast<std::size_t>(p_->a->size()) : 0;
  const std::size_t need = static_cast<std::size_t>(k) * n;
  if (n == 0) return std::vector<SolveResult>(static_cast<std::size_t>(k),
                                              invalid_input("empty-system"));
  if (B.size() < need || X.size() < need)
    return std::vector<SolveResult>(static_cast<std::size_t>(k),
                                    invalid_input("size-mismatch"));

  std::vector<SolveResult> res = engine_->solve_many(B, X, k);
  if (!spec_.fallback.empty()) {
    // Per-column recovery: a poisoned column was retired by the batched
    // scheduler without freezing its wave; re-solve just that column
    // through the scalar ladder (validation + escalation included).
    for (int c = 0; c < k; ++c) {
      if (!retryable(res[c])) continue;
      std::span<double> xc = X.subspan(static_cast<std::size_t>(c) * n, n);
      std::fill(xc.begin(), xc.end(), 0.0);
      // solve_impl, not solve(): the batch already holds the solve slot.
      res[c] = solve_impl(B.subspan(static_cast<std::size_t>(c) * n, n), xc);
    }
  }
  return res;
}

std::vector<double> Session::make_rhs_batch(int k, std::uint64_t seed0) const {
  return batch_rhs(*p_, k, seed0);
}

std::string Session::solver_name() const { return engine_->name(); }

}  // namespace nk
