#include "core/session.hpp"

namespace nk {

namespace {

/// The spec's `;layout=` option doubles as the session workspace default,
/// so solvers that resolve their layout from the workspace (nested tuples,
/// FGMRES gather panels) honor it too.
std::unique_ptr<SolverWorkspace> make_session_workspace(const SolverSpec& spec) {
  auto ws = std::make_unique<SolverWorkspace>();
  if (spec.layout.has_value()) ws->set_panel_layout(*spec.layout);
  return ws;
}

}  // namespace

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec)
    : p_(std::move(p)),
      spec_(spec),
      m_(registry().make_precond(spec.precond, *p_)),
      ws_(make_session_workspace(spec)),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)),
      spec_(spec),
      m_(std::move(m)),
      ws_(make_session_workspace(spec)),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, NestedConfig cfg,
                 const Termination& term, std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)), m_(std::move(m)), ws_(std::make_unique<SolverWorkspace>()) {
  spec_.kind = cfg.name;  // reporting only; not a registered kind
  engine_ = detail::make_nested_engine(*p_, m_, std::move(cfg), term, ws_.get());
}

Session::Session(PreparedProblem p, const SolverSpec& spec)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec) {}

Session::Session(PreparedProblem p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec, std::move(m)) {}

Session::Session(PreparedProblem p, NestedConfig cfg, const Termination& term,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), std::move(cfg), term,
              std::move(m)) {}

SolveResult Session::solve() {
  std::vector<double> x(p_->b.size(), 0.0);
  return engine_->solve(std::span<const double>(p_->b), std::span<double>(x));
}

SolveResult Session::solve(std::span<const double> b, std::span<double> x) {
  return engine_->solve(b, x);
}

std::vector<SolveResult> Session::solve_many(std::span<const double> B,
                                             std::span<double> X, int k) {
  return engine_->solve_many(B, X, k);
}

std::vector<double> Session::make_rhs_batch(int k, std::uint64_t seed0) const {
  return batch_rhs(*p_, k, seed0);
}

std::string Session::solver_name() const { return engine_->name(); }

}  // namespace nk
