#include "core/session.hpp"

namespace nk {

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec)
    : p_(std::move(p)),
      spec_(spec),
      m_(registry().make_precond(spec.precond, *p_)),
      ws_(std::make_unique<SolverWorkspace>()),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)),
      spec_(spec),
      m_(std::move(m)),
      ws_(std::make_unique<SolverWorkspace>()),
      engine_(registry().make_solver(spec_, *p_, m_, ws_.get())) {}

Session::Session(std::shared_ptr<const PreparedProblem> p, NestedConfig cfg,
                 const Termination& term, std::shared_ptr<PrimaryPrecond> m)
    : p_(std::move(p)), m_(std::move(m)), ws_(std::make_unique<SolverWorkspace>()) {
  spec_.kind = cfg.name;  // reporting only; not a registered kind
  engine_ = detail::make_nested_engine(*p_, m_, std::move(cfg), term, ws_.get());
}

Session::Session(PreparedProblem p, const SolverSpec& spec)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec) {}

Session::Session(PreparedProblem p, const SolverSpec& spec,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), spec, std::move(m)) {}

Session::Session(PreparedProblem p, NestedConfig cfg, const Termination& term,
                 std::shared_ptr<PrimaryPrecond> m)
    : Session(std::make_shared<const PreparedProblem>(std::move(p)), std::move(cfg), term,
              std::move(m)) {}

SolveResult Session::solve() {
  std::vector<double> x(p_->b.size(), 0.0);
  return engine_->solve(std::span<const double>(p_->b), std::span<double>(x));
}

SolveResult Session::solve(std::span<const double> b, std::span<double> x) {
  return engine_->solve(b, x);
}

std::vector<SolveResult> Session::solve_many(std::span<const double> B,
                                             std::span<double> X, int k) {
  return engine_->solve_many(B, X, k);
}

std::vector<double> Session::make_rhs_batch(int k, std::uint64_t seed0) const {
  return batch_rhs(*p_, k, seed0);
}

std::string Session::solver_name() const { return engine_->name(); }

}  // namespace nk
