// The string-keyed solver/preconditioner factory registry.
//
// Every solver family and primary preconditioner registers itself under a
// short kind name ("cg", "fgmres", "f3r", the Table 4 variants; "jacobi",
// "bj-ilu0", "sd-ainv", ...) together with metadata the spec parser and
// the conformance catalog consume.  Downstream code never switches on an
// enum: it parses a SolverSpec / PrecondSpec (core/spec.hpp) and asks the
// registry to build the matching SolverEngine / PrimaryPrecond —
//
//   auto m  = registry().make_precond(PrecondSpec::parse("bj-ilu0@fp16"), p);
//   auto s  = registry().make_solver(SolverSpec::parse("fgmres64"), p, m, &ws);
//
// — the way PETSc's -ksp_type/-pc_type string options let one binary cover
// the whole method matrix.  nk::Session (core/session.hpp) wraps this pair
// into the one-object facade most callers want.
//
// Kinds tagged `conformance` form the conformance catalog: the sweep in
// tests/conformance/ enumerates them (in registration order) instead of
// hand-rolling nested loops.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "core/engine.hpp"
#include "core/problem.hpp"
#include "core/spec.hpp"
#include "precond/preconditioner.hpp"

namespace nk {

struct SolverSpec;  // core/spec.hpp (included above; forward for clarity)

/// Registration metadata for a solver kind.
struct SolverKindInfo {
  std::string kind;      ///< registry key, lower case ("fgmres")
  std::string summary;   ///< one-line help shown in CLI error messages
  bool takes_m = false;  ///< accepts a trailing iteration count ("fgmres64")
  int default_m = 0;     ///< m used when the spec leaves it 0
  bool takes_prec = true;  ///< accepts '@prec' (false: Table 4 variants)
  bool conformance = false;  ///< enumerated by the conformance catalog
  /// Execution-space backends the kind can build on.  Every built-in kind
  /// dispatches below the engine layer and so runs on all of them — the
  /// default (a default member initializer, so the positional aggregate
  /// registrations stay valid) names the full set; a future device-resident
  /// kind narrows this list and make_solver rejects the rest.
  std::vector<Backend> backends{Backend::kHost, Backend::kSerial};

  /// Whether `spec ";backend=NAME"` is buildable for this kind.
  [[nodiscard]] bool supports_backend(Backend be) const {
    for (const Backend b : backends)
      if (b == be) return true;
    return false;
  }
};

/// Registration metadata for a preconditioner kind.
struct PrecondKindInfo {
  std::string kind;
  std::string summary;
  bool conformance = false;
};

/// Thread-safety: lookups and factory calls are safe from any number of
/// threads concurrently with registration — lookups are lock-free snapshot
/// reads; add_solver/add_precond serialize on an internal mutex and
/// publish a fresh immutable snapshot.  Metadata pointers returned by
/// solver_info()/precond_info() stay valid for the process lifetime.
class Registry {
 public:
  using SolverFactory = std::function<std::unique_ptr<SolverEngine>(
      const SolverSpec&, const PreparedProblem&, std::shared_ptr<PrimaryPrecond>,
      SolverWorkspace*)>;
  using PrecondFactory = std::function<std::shared_ptr<PrimaryPrecond>(
      const PrecondSpec&, const PreparedProblem&)>;

  /// Register a kind (last registration wins on duplicate names).
  void add_solver(SolverKindInfo info, SolverFactory factory);
  void add_precond(PrecondKindInfo info, PrecondFactory factory);

  /// Metadata lookup; nullptr when the kind is unknown.
  [[nodiscard]] const SolverKindInfo* solver_info(const std::string& kind) const;
  [[nodiscard]] const PrecondKindInfo* precond_info(const std::string& kind) const;

  /// All registered kind names in registration order.
  [[nodiscard]] std::vector<std::string> solver_kinds() const;
  [[nodiscard]] std::vector<std::string> precond_kinds() const;

  /// The conformance catalog's axes (kinds tagged conformance, in
  /// registration order — the sweep's cell ordering contract).
  [[nodiscard]] std::vector<std::string> conformance_solver_kinds() const;
  [[nodiscard]] std::vector<std::string> conformance_precond_kinds() const;

  /// Build a solver engine for `spec` over (p, m).  `p` and `ws` must
  /// outlive the engine; `m` is shared.  Throws SpecError on an unknown
  /// kind (naming the registered ones) or a spec the kind rejects.
  [[nodiscard]] std::unique_ptr<SolverEngine> make_solver(
      const SolverSpec& spec, const PreparedProblem& p,
      std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) const;

  /// Build the primary preconditioner `spec` describes for `p`.
  /// Throws SpecError on an unknown kind.
  [[nodiscard]] std::shared_ptr<PrimaryPrecond> make_precond(
      const PrecondSpec& spec, const PreparedProblem& p) const;

 private:
  struct SolverEntry {
    SolverKindInfo info;
    SolverFactory factory;
  };
  struct PrecondEntry {
    PrecondKindInfo info;
    PrecondFactory factory;
  };

  // Thread-safety: the registry is read on every Session construction — in
  // a daemon, from many threads at once — while registration happens rarely
  // (the builtin kinds once at first use, the test-only fault kind on
  // demand).  The kind tables therefore live in an IMMUTABLE State snapshot
  // behind an atomic shared_ptr: lookups load the snapshot and never take a
  // lock, writers copy-mutate-swap under `write_mu_`.  Retired snapshots
  // are kept alive for the process lifetime (`retired_` — bounded by the
  // number of registration calls, i.e. tiny) so the info pointers handed
  // out by solver_info()/precond_info() can never dangle.
  struct State {
    std::vector<std::string> solver_order, precond_order;
    std::map<std::string, SolverEntry> solvers;
    std::map<std::string, PrecondEntry> preconds;
  };

  [[nodiscard]] std::shared_ptr<const State> snapshot() const {
    return state_.load(std::memory_order_acquire);
  }
  template <class Mutate>
  void update(Mutate&& mutate);

  std::atomic<std::shared_ptr<const State>> state_{std::make_shared<const State>()};
  mutable std::mutex write_mu_;
  std::vector<std::shared_ptr<const State>> retired_;
};

/// The process-wide registry, with every built-in kind registered on first
/// use.  (Registration runs lazily from here rather than from static
/// initializers so static-library builds cannot drop the registrars.)
/// First use is thread-safe (C++ magic-static initialization), and later
/// concurrent lookup/registration is covered by Registry's own contract —
/// a daemon building Sessions from many threads needs no external locking.
Registry& registry();

namespace detail {

/// Registers the built-in solver/preconditioner kinds (core/engines.cpp).
void register_builtin_kinds(Registry& r);

/// Engine over an explicit NestedConfig — the escape hatch for tuples the
/// spec grammar cannot express (custom levels, dynamic inner termination).
std::unique_ptr<SolverEngine> make_nested_engine(const PreparedProblem& p,
                                                 std::shared_ptr<PrimaryPrecond> m,
                                                 NestedConfig cfg, Termination term,
                                                 SolverWorkspace* ws);

}  // namespace detail

}  // namespace nk
