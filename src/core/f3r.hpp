// F3R — the paper's proposed solver (Section 4.2).
//
//   F3R = (F^m1, F^m2, F^m3, R^m4, M),  defaults (100, 8, 4, 2), c = 64.
//
// Three precision configurations are evaluated in Section 5:
//
//   fp64-F3R — every level in fp64 (the speedup baseline);
//   fp32-F3R — fp32 for all inner solvers, fp64 outermost;
//   fp16-F3R — the Table 1 mapping: fp32 second level, fp16 matrix at the
//              third level (fp32 vectors), all-fp16 innermost Richardson.
//
// The factory functions here produce NestedConfig descriptions consumed by
// NestedSolver; see variants.hpp for the Section 6.2 ablation solvers.
#pragma once

#include <string>

#include "core/nested_builder.hpp"

namespace nk {

/// Tunable F3R parameters (paper defaults).
struct F3rParams {
  int m1 = 100;  ///< outermost FGMRES dimension (also the restart cycle)
  int m2 = 8;    ///< second-level FGMRES iterations
  int m3 = 4;    ///< third-level FGMRES iterations
  int m4 = 2;    ///< innermost Richardson iterations
  int cycle = 64;           ///< adaptive weight-update period c
  bool adaptive = true;     ///< false → fixed_weight everywhere (Fig. 6)
  float fixed_weight = 1.0f;
};

/// F3R at the given "lowest precision":
///   Prec::FP64 → fp64-F3R, Prec::FP32 → fp32-F3R, Prec::FP16 → fp16-F3R.
NestedConfig f3r_config(Prec lowest, const F3rParams& p = {});

/// Convenience names used across benches: "fp64-F3R", "fp32-F3R", "fp16-F3R".
std::string f3r_name(Prec lowest);

/// The paper's default termination for F3R (rtol 1e-8, ≤ 3 restarts).
Termination f3r_termination(double rtol = 1e-8);

}  // namespace nk
