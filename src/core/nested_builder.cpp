#include "core/nested_builder.hpp"

#include <sstream>
#include <stdexcept>

#include "core/spec.hpp"
#include "krylov/chebyshev.hpp"

namespace nk {

// ---------------------------------------------------------------- matrices

MultiPrecMatrix::MultiPrecMatrix(CsrMatrix<double> a, bool use_sell, int sell_chunk)
    : a64_(std::move(a)), use_sell_(use_sell), chunk_(sell_chunk) {
  // SpecError subclasses std::invalid_argument, so legacy catch sites keep
  // working while the library path (Session) reports kInvalidInput.
  if (a64_.nrows != a64_.ncols)
    throw SpecError("MultiPrecMatrix: matrix must be square");
  if (use_sell_) s64_ = csr_to_sell(a64_, chunk_);
}

void MultiPrecMatrix::ensure(Prec mp) {
  switch (mp) {
    case Prec::FP64:
      break;  // always present
    case Prec::FP32:
      if (!a32_) a32_ = cast_matrix<float>(a64_);
      if (use_sell_ && !s32_) s32_ = csr_to_sell(*a32_, chunk_);
      break;
    case Prec::FP16:
      if (!a16_) a16_ = cast_matrix<half>(a64_);
      if (use_sell_ && !s16_) s16_ = csr_to_sell(*a16_, chunk_);
      break;
  }
}

template <class VT>
std::unique_ptr<Operator<VT>> MultiPrecMatrix::make_operator(Prec mp, Backend be) {
  ensure(mp);
  if (use_sell_) {
    switch (mp) {
      case Prec::FP64: return std::make_unique<SellOperator<double, VT>>(*s64_, be);
      case Prec::FP32: return std::make_unique<SellOperator<float, VT>>(*s32_, be);
      case Prec::FP16: return std::make_unique<SellOperator<half, VT>>(*s16_, be);
    }
  } else {
    switch (mp) {
      case Prec::FP64: return std::make_unique<CsrOperator<double, VT>>(a64_, be);
      case Prec::FP32: return std::make_unique<CsrOperator<float, VT>>(*a32_, be);
      case Prec::FP16: return std::make_unique<CsrOperator<half, VT>>(*a16_, be);
    }
  }
  throw std::logic_error("MultiPrecMatrix: bad precision");
}

template std::unique_ptr<Operator<double>> MultiPrecMatrix::make_operator<double>(Prec,
                                                                                  Backend);
template std::unique_ptr<Operator<float>> MultiPrecMatrix::make_operator<float>(Prec,
                                                                                Backend);
template std::unique_ptr<Operator<half>> MultiPrecMatrix::make_operator<half>(Prec,
                                                                              Backend);

std::size_t MultiPrecMatrix::value_bytes() const {
  std::size_t b = a64_.vals.size() * sizeof(double);
  if (a32_) b += a32_->vals.size() * sizeof(float);
  if (a16_) b += a16_->vals.size() * sizeof(half);
  if (s64_) b += s64_->vals.size() * sizeof(double);
  if (s32_) b += s32_->vals.size() * sizeof(float);
  if (s16_) b += s16_->vals.size() * sizeof(half);
  return b;
}

// -------------------------------------------------------------- validation

void validate(const NestedConfig& cfg) {
  if (cfg.levels.empty()) throw SpecError("NestedConfig: no levels");
  const LevelSpec& outer = cfg.levels.front();
  if (outer.kind != SolverKind::FGMRES || outer.vec != Prec::FP64 || outer.mat != Prec::FP64)
    throw SpecError(
        "NestedConfig: the outermost level must be fp64 FGMRES (the paper's setting)");
  for (const LevelSpec& lv : cfg.levels) {
    if (lv.m <= 0) throw SpecError("NestedConfig: level iteration count must be > 0");
    if (lv.kind == SolverKind::Richardson && lv.cycle <= 0)
      throw SpecError("NestedConfig: Richardson cycle must be > 0");
  }
}

std::string tuple_notation(const NestedConfig& cfg) {
  std::ostringstream os;
  os << "(";
  for (const LevelSpec& lv : cfg.levels) {
    const char* tag = lv.kind == SolverKind::FGMRES      ? "F^"
                      : lv.kind == SolverKind::Richardson ? "R^"
                                                          : "C^";
    os << tag << lv.m << ", ";
  }
  os << "M)";
  return os.str();
}

// ----------------------------------------------------------------- builder

NestedSolver::NestedSolver(std::shared_ptr<MultiPrecMatrix> a,
                           std::shared_ptr<PrimaryPrecond> m, NestedConfig cfg,
                           SolverWorkspace* ws, std::string ws_prefix)
    : a_(std::move(a)), m_(std::move(m)), cfg_(std::move(cfg)),
      kx_(ws != nullptr ? ws->backend() : Backend::kHost), ws_(ws),
      ws_prefix_(std::move(ws_prefix)) {
  validate(cfg_);
  if (m_->size() != a_->size())
    throw SpecError("NestedSolver: matrix/preconditioner size mismatch");

  // Build the preconditioning pipeline below the outermost level, then the
  // outermost fp64 FGMRES itself.
  Preconditioner<double>* below;
  if (cfg_.levels.size() == 1) {
    auto handle = m_->make_apply<double>(cfg_.precond_storage);
    handle->set_backend(kx_.backend());
    below = handle.get();
    owned_.push_back(std::shared_ptr<void>(std::move(handle)));
  } else {
    const Prec child_vec = cfg_.levels[1].vec;
    switch (child_vec) {
      case Prec::FP64:
        below = build_level<double>(1);
        break;
      case Prec::FP32: {
        auto* child = build_level<float>(1);
        auto bridge = std::make_shared<PrecisionBridge<double, float>>(
            child, ws_, ws_prefix_ + "lvl0.bridge");
        below = bridge.get();
        owned_.push_back(bridge);
        break;
      }
      case Prec::FP16: {
        auto* child = build_level<half>(1);
        auto bridge = std::make_shared<PrecisionBridge<double, half>>(
            child, ws_, ws_prefix_ + "lvl0.bridge");
        below = bridge.get();
        owned_.push_back(bridge);
        break;
      }
      default:
        throw std::logic_error("NestedSolver: bad child precision");
    }
  }

  auto op = a_->make_operator<double>(cfg_.levels[0].mat, kx_.backend());
  outer_op_ = op.get();
  owned_.push_back(std::shared_ptr<void>(std::move(op)));
  auto outer = std::make_shared<FgmresSolver<double>>(
      *outer_op_, *below, FgmresSolver<double>::Config{cfg_.levels[0].m}, ws_,
      ws_prefix_ + "lvl0.fgmres");
  outer_ = outer.get();
  owned_.push_back(outer);
}

template <class VT>
Preconditioner<VT>* NestedSolver::build_level(std::size_t d) {
  const LevelSpec& lv = cfg_.levels[d];
  const std::string lvl_key = ws_prefix_ + "lvl" + std::to_string(d);
  // Operator for this level.
  auto op_owned = a_->make_operator<VT>(lv.mat, kx_.backend());
  Operator<VT>* op = op_owned.get();
  owned_.push_back(std::shared_ptr<void>(std::move(op_owned)));

  // Preconditioner of this level: the next level, or the primary M.
  Preconditioner<VT>* below;
  if (d + 1 == cfg_.levels.size()) {
    auto handle = m_->make_apply<VT>(cfg_.precond_storage);
    handle->set_backend(kx_.backend());
    below = handle.get();
    owned_.push_back(std::shared_ptr<void>(std::move(handle)));
  } else {
    const Prec child_vec = cfg_.levels[d + 1].vec;
    auto attach = [&]<class CV>(Preconditioner<CV>* child) -> Preconditioner<VT>* {
      if constexpr (std::is_same_v<CV, VT>) {
        return child;
      } else {
        auto bridge =
            std::make_shared<PrecisionBridge<VT, CV>>(child, ws_, lvl_key + ".bridge");
        owned_.push_back(bridge);
        return bridge.get();
      }
    };
    switch (child_vec) {
      case Prec::FP64: below = attach(build_level<double>(d + 1)); break;
      case Prec::FP32: below = attach(build_level<float>(d + 1)); break;
      case Prec::FP16: below = attach(build_level<half>(d + 1)); break;
      default: throw std::logic_error("NestedSolver: bad child precision");
    }
  }

  if (lv.kind == SolverKind::FGMRES) {
    typename FgmresSolver<VT>::Config fc;
    fc.m = lv.m;
    fc.inner_rtol = lv.inner_rtol;
    auto solver =
        std::make_shared<FgmresSolver<VT>>(*op, *below, fc, ws_, lvl_key + ".fgmres");
    owned_.push_back(solver);
    return solver.get();
  }

  if (lv.kind == SolverKind::Chebyshev) {
    typename ChebyshevSolver<VT>::Config cc;
    cc.m = lv.m;
    cc.eig_ratio = lv.eig_ratio;
    auto solver = std::make_shared<ChebyshevSolver<VT>>(*op, *below, cc, kx_.backend());
    owned_.push_back(solver);
    return solver.get();
  }

  // Richardson: when vectors are fp16 the ω' computation needs a separate
  // fp32-accumulating operator over the same (fp16) matrix storage.
  Operator<float>* op32 = nullptr;
  if constexpr (std::is_same_v<VT, half>) {
    auto op32_owned = a_->make_operator<float>(lv.mat, kx_.backend());
    op32 = op32_owned.get();
    owned_.push_back(std::shared_ptr<void>(std::move(op32_owned)));
  }
  typename RichardsonSolver<VT>::Config rc;
  rc.m = lv.m;
  rc.cycle = lv.cycle;
  rc.adaptive = lv.adaptive;
  rc.fixed_weight = lv.fixed_weight;
  auto solver = std::make_shared<RichardsonSolver<VT>>(*op, *below, rc, op32, ws_,
                                                       lvl_key + ".richardson");
  owned_.push_back(solver);
  weight_probes_.push_back([s = solver.get()] { return s->weights(); });
  state_resets_.push_back([s = solver.get()] { s->reset_state(); });
  return solver.get();
}

// --------------------------------------------------------------- solving

SolveResult NestedSolver::solve(std::span<const double> b, std::span<double> x,
                                const Termination& term) {
  SolveResult res;
  res.solver = cfg_.name;
  WallTimer timer;

  const std::uint64_t m_calls0 = m_->invocations();
  const std::uint64_t spmv0 = outer_op_->spmv_count();

  const double bnorm = static_cast<double>(kx_.nrm2(b));
  const double bref = bnorm > 0.0 ? bnorm : 1.0;
  const double target = term.rtol * bref;

  std::vector<double> estimates;
  outer_->set_iteration_log(term.record_history ? &estimates : nullptr);

  // Restart loop with status attribution: convergence is judged on the
  // true fp64 residual only; the outer cycle's terminal markers (Arnoldi
  // breakdown / non-finite norm) name WHY a failed attempt stopped.
  double stag_best = std::numeric_limits<double>::infinity();
  int stall = 0;
  bool x_nonzero = kx_.nrm2(std::span<const double>(x.data(), x.size())) > 0.0;
  for (int cycle = 0; cycle <= term.max_restarts; ++cycle) {
    const auto stats = outer_->run(b, x, target, x_nonzero);
    res.iterations += stats.iters;
    res.restarts = cycle;
    x_nonzero = true;
    const double relres = kx_.relative_residual(
        a_->csr_fp64(), std::span<const double>(x.data(), x.size()), b);
    res.final_relres = relres;
    if (relres < term.rtol) {
      res.mark_converged();
      break;
    }
    if (!std::isfinite(relres)) {
      res.fail(SolveStatus::kNonFinite, stats.non_finite ? "hj1" : "relres");
      break;
    }
    // Attribute the terminal cause WITHOUT altering the restart control
    // flow (restart-on-breakdown is the conformance-pinned behavior: the
    // cycle's x update may still make progress).  If the budget runs out,
    // the last cycle's markers say why.
    if (stats.non_finite) {
      res.fail(SolveStatus::kNonFinite, "hj1");
    } else if (stats.breakdown) {
      res.fail(SolveStatus::kBreakdown, "hj1");
    } else {
      res.fail(SolveStatus::kMaxIters);
    }
    if (term.stagnate_window > 0) {
      if (relres < 0.99 * stag_best) {
        stag_best = relres;
        stall = 0;
      } else if (++stall >= term.stagnate_window) {
        res.fail(SolveStatus::kStagnated, "relres");
        break;
      }
    }
  }
  outer_->set_iteration_log(nullptr);

  if (term.record_history) {
    res.history.reserve(estimates.size());
    for (double e : estimates) res.history.push_back(e / bref);
  }
  res.precond_invocations = m_->invocations() - m_calls0;
  res.spmv_count = outer_op_->spmv_count() - spmv0;
  res.seconds = timer.seconds();
  return res;
}

std::vector<SolveResult> NestedSolver::solve_many(const double* b, std::ptrdiff_t ldb,
                                                  double* x, std::ptrdiff_t ldx, int k,
                                                  const Termination& term) {
  std::vector<SolveResult> out;
  out.reserve(static_cast<std::size_t>(std::max(k, 0)));
  const std::size_t n = static_cast<std::size_t>(size());
  // Columns run in invocation order (see the header): identical to k
  // sequential solve() calls by construction, with the tuple's entire
  // setup — matrix copies, factors, level workspaces — shared.
  for (int c = 0; c < k; ++c)
    out.push_back(solve(std::span<const double>(b + static_cast<std::ptrdiff_t>(c) * ldb, n),
                        std::span<double>(x + static_cast<std::ptrdiff_t>(c) * ldx, n),
                        term));
  return out;
}

std::vector<float> NestedSolver::richardson_weights() const {
  std::vector<float> out;
  for (const auto& probe : weight_probes_) {
    const auto w = probe();
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}

void NestedSolver::reset_state() {
  for (const auto& r : state_resets_) r();
}

}  // namespace nk
