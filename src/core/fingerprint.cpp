#include "core/fingerprint.hpp"

namespace nk {

std::uint64_t matrix_fingerprint(const CsrMatrix<double>& a, bool symmetric) {
  std::uint64_t h = kFnvOffset;
  const std::int64_t dims[2] = {a.nrows, a.ncols};
  h = fingerprint_mix(dims, sizeof(dims), h);
  h = fingerprint_mix(a.row_ptr.data(), a.row_ptr.size() * sizeof(index_t), h);
  h = fingerprint_mix(a.col_idx.data(), a.col_idx.size() * sizeof(index_t), h);
  h = fingerprint_mix(a.vals.data(), a.vals.size() * sizeof(double), h);
  const unsigned char sym = symmetric ? 1 : 0;
  return fingerprint_mix(&sym, 1, h);
}

std::uint64_t standin_fingerprint(const std::string& name, int scale) {
  // Domain-separated from matrix fingerprints by the leading tag.
  std::uint64_t h = fingerprint_mix("standin:", 8);
  h = fingerprint_mix(name.data(), name.size(), h);
  return fingerprint_mix(&scale, sizeof(scale), h);
}

std::string fingerprint_hex(std::uint64_t fp) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[fp & 0xf];
    fp >>= 4;
  }
  return s;
}

bool parse_fingerprint_hex(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

}  // namespace nk
