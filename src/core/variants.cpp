#include "core/variants.hpp"

#include <stdexcept>

namespace nk {

namespace {

LevelSpec fgmres_level(int m, Prec mat, Prec vec) {
  LevelSpec l;
  l.kind = SolverKind::FGMRES;
  l.m = m;
  l.mat = mat;
  l.vec = vec;
  return l;
}

}  // namespace

NestedConfig variant_config(const std::string& name) {
  NestedConfig cfg;
  cfg.name = name;
  cfg.precond_storage = Prec::FP16;  // Table 4: M is fp16 in every variant

  const LevelSpec outer = fgmres_level(100, Prec::FP64, Prec::FP64);

  if (name == "F2") {
    cfg.levels = {outer, fgmres_level(64, Prec::FP32, Prec::FP32)};
  } else if (name == "fp16-F2") {
    cfg.levels = {outer, fgmres_level(64, Prec::FP16, Prec::FP16)};
  } else if (name == "F3") {
    cfg.levels = {outer, fgmres_level(8, Prec::FP32, Prec::FP32),
                  fgmres_level(8, Prec::FP16, Prec::FP32)};
  } else if (name == "fp16-F3") {
    cfg.levels = {outer, fgmres_level(8, Prec::FP32, Prec::FP32),
                  fgmres_level(8, Prec::FP16, Prec::FP16)};
  } else if (name == "F4") {
    cfg.levels = {outer, fgmres_level(8, Prec::FP32, Prec::FP32),
                  fgmres_level(4, Prec::FP16, Prec::FP32),
                  fgmres_level(2, Prec::FP16, Prec::FP16)};
  } else {
    throw std::invalid_argument("unknown variant: " + name +
                                " (expected F2|fp16-F2|F3|fp16-F3|F4)");
  }
  return cfg;
}

std::vector<std::string> variant_names() { return {"F2", "fp16-F2", "F3", "fp16-F3", "F4"}; }

}  // namespace nk
