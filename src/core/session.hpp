// nk::Session — the one-object facade over the descriptor layer.
//
// A Session owns everything a solve needs: the prepared problem, the
// primary preconditioner (built from the spec, or borrowed from the
// caller), a grow-only SolverWorkspace, and the type-erased solver engine
// the registry minted for the spec.  Single- and multi-RHS solves (ragged
// waves, compact/masked scheduling — all named by the spec) then run
// through one uniform surface:
//
//   nk::PreparedProblem p = nk::prepare_standin("ecology2", 1);
//   nk::Session s(p, nk::SolverSpec::parse("f3r@fp16"));
//   nk::SolveResult r = s.solve();
//
// Repeated solves on one Session reuse the workspace (the setup/solve
// split of PR 3): buffers are acquired once and every later solve runs
// allocation-free.  Per column, solve_many() reproduces solve() on that
// column alone bit-for-bit for the kinds with a batched kernel path (cg,
// bicgstab, the nested tuples) — the guarantee the conformance and
// BatchedCompaction tests pin.
//
// CONCURRENCY CONTRACT: a Session is single-solver-at-a-time.  Its
// workspace slabs are grow-only SHARED state (workspace.hpp), its engine
// holds spans into them, and the fallback ladder re-mints the engine in
// place — two overlapping solves would silently alias each other's
// buffers.  Rather than corrupt results, an overlapping solve()/
// solve_many() call FAILS FAST: the loser returns SolveStatus::
// kInvalidInput with failure site "concurrent-use" and does not touch the
// engine or workspace.  Give each thread its own Session, or lease
// Sessions through nk::service::SessionCache (the daemon's pattern), and
// serialize externally if two threads must share one.  Sequential use from
// different threads is fine (results are thread-count-dependent only
// through OpenMP reassociation, like every kernel in the library).
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/registry.hpp"

namespace nk {

/// Non-owning shared_ptr view of a caller-owned preconditioner (the
/// aliasing-constructor idiom) — the bridge from the legacy run_* surface,
/// whose callers keep ownership of M.  `m` must outlive every user.
inline std::shared_ptr<PrimaryPrecond> borrow_precond(PrimaryPrecond& m) {
  return std::shared_ptr<PrimaryPrecond>(std::shared_ptr<void>(), &m);
}

/// Non-owning view of a caller-owned prepared problem: a Session built
/// over it performs no copy of the RHS (the run_* shims and per-cell
/// sweeps use this).  `p` must outlive the Session.
inline std::shared_ptr<const PreparedProblem> borrow_problem(const PreparedProblem& p) {
  return std::shared_ptr<const PreparedProblem>(std::shared_ptr<void>(), &p);
}

class Session {
 public:
  /// Build the full stack from a spec: M from spec.precond via the
  /// registry, then the solver engine.  Throws SpecError on unknown kinds.
  /// The by-value overloads take (a copy of) the problem into the Session;
  /// the shared_ptr overloads share it — pass borrow_problem(p) to build
  /// over a caller-owned problem with zero copies.
  Session(PreparedProblem p, const SolverSpec& spec);
  Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec);

  /// Spec-text conveniences, so the autotuner's one-liner reads as the
  /// paper intends: `nk::Session s(p, "auto");`.  Exactly equivalent to
  /// parsing first; SpecError propagates on malformed text.
  Session(PreparedProblem p, const std::string& spec_text);
  Session(std::shared_ptr<const PreparedProblem> p, const std::string& spec_text);

  /// Same, but solve through a caller-supplied M (the spec's precond part
  /// is ignored except for its storage-precision override).
  Session(PreparedProblem p, const SolverSpec& spec, std::shared_ptr<PrimaryPrecond> m);
  Session(std::shared_ptr<const PreparedProblem> p, const SolverSpec& spec,
          std::shared_ptr<PrimaryPrecond> m);

  /// Custom nested tuples the spec grammar cannot express (hand-built
  /// NestedConfig levels, dynamic inner termination, Chebyshev levels).
  Session(PreparedProblem p, NestedConfig cfg, const Termination& term,
          std::shared_ptr<PrimaryPrecond> m);
  Session(std::shared_ptr<const PreparedProblem> p, NestedConfig cfg,
          const Termination& term, std::shared_ptr<PrimaryPrecond> m);

  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// Solve against the problem's own right-hand side from a zero guess
  /// (the experiment-runner path; the solution vector is internal).
  SolveResult solve();

  /// Solve A x = b (x holds the initial guess).  Overlapping calls from
  /// other threads fail fast (kInvalidInput, "concurrent-use") — see the
  /// concurrency contract above.
  ///
  /// This is the resilience-policy entry point: inputs are validated first
  /// (empty system, size mismatch, non-finite b → SolveStatus::kInvalidInput
  /// without touching the engine), and when the spec carries a
  /// ";fallback=fp32,fp64" ladder, a non_finite/breakdown outcome is
  /// retried at each escalated precision in turn — M re-minted at the new
  /// storage precision, x reset to zero, the failed attempts recorded in
  /// SolveResult::attempts.  The prepared problem, preconditioner
  /// factorization, and workspace slabs are all reused across attempts.
  SolveResult solve(std::span<const double> b, std::span<double> x);

  /// Batched solve: k right-hand sides, column c of B/X contiguous at
  /// offset c·n.  Wave width and compact/masked scheduling come from the
  /// spec ("...;wave=8", "...;masked").  k ≤ 0 returns an empty vector;
  /// size mismatches return k kInvalidInput results.  Under ";fallback="
  /// every retired non_finite/breakdown column is re-solved individually
  /// through the scalar escalation ladder.
  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k);

  /// k seeded right-hand sides for this problem (see nk::batch_rhs).
  [[nodiscard]] std::vector<double> make_rhs_batch(int k, std::uint64_t seed0 = 7) const;

  [[nodiscard]] const SolverSpec& spec() const { return spec_; }
  [[nodiscard]] const PreparedProblem& problem() const { return *p_; }
  [[nodiscard]] PrimaryPrecond& precond() { return *m_; }
  [[nodiscard]] SolverWorkspace& workspace() { return *ws_; }
  /// The ACTIVE execution-space backend, after resolution (spec's
  /// ";backend=" > NKRYLOV_BACKEND > host).  When NKRYLOV_BACKEND held an
  /// unknown name this reports host, but every solve fails fast with
  /// kInvalidInput ("backend: ...") rather than silently running there.
  [[nodiscard]] Backend backend() const { return ws_->backend(); }
  /// The engine's reporting name ("fp16-CG", "fp64-FGMRES(64)", ...).
  [[nodiscard]] std::string solver_name() const;

 private:
  [[nodiscard]] SolveResult invalid_input(std::string why) const;
  SolveResult solve_impl(std::span<const double> b, std::span<double> x);

  /// RAII claim on the Session's single solve slot; `claimed` false on the
  /// losing side of a race (the caller must fail fast, touching nothing).
  struct SolveSlot {
    explicit SolveSlot(std::atomic<bool>& busy)
        : busy_(busy), claimed(!busy.exchange(true, std::memory_order_acquire)) {}
    ~SolveSlot() {
      if (claimed) busy_.store(false, std::memory_order_release);
    }
    SolveSlot(const SolveSlot&) = delete;
    SolveSlot& operator=(const SolveSlot&) = delete;
    std::atomic<bool>& busy_;
    const bool claimed;
  };

  // The problem and workspace live behind pointers so the engine's
  // internal references survive moves of the Session itself — and so does
  // the busy flag (std::atomic is immovable).
  std::shared_ptr<const PreparedProblem> p_;
  SolverSpec spec_;
  std::shared_ptr<PrimaryPrecond> m_;
  /// Non-empty when NKRYLOV_BACKEND named an unknown backend at build time
  /// (and the spec did not override it): solves fail fast with this
  /// message instead of silently falling back.  Declared before ws_ so the
  /// workspace factory can fill it from the constructor init list.
  std::string backend_err_;
  std::unique_ptr<SolverWorkspace> ws_;
  std::unique_ptr<SolverEngine> engine_;
  std::unique_ptr<std::atomic<bool>> in_solve_ = std::make_unique<std::atomic<bool>>(false);
};

}  // namespace nk
