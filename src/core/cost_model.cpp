#include "core/cost_model.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nk {

double access_constant(double nnz_per_row, std::size_t bytes_value) {
  return nnz_per_row * (static_cast<double>(bytes_value) + 4.0) / 8.0;
}

double cost_fgmres(double ca, double cm, int m) {
  const double md = m;
  return ca * md + cm * md + 2.5 * md * md;
}

double cost_richardson(double ca, double cm, int m) {
  const double md = m;
  return ca * (md - 1.0) + cm * md + 4.0 * (md - 1.0);
}

namespace {

double cost_fgmres_real(double ca, double cm, double m) {
  return ca * m + cm * m + 2.5 * m * m;
}

double cost_richardson_real(double ca, double cm, double m) {
  return ca * (m - 1.0) + cm * m + 4.0 * (m - 1.0);
}

}  // namespace

double cost_nested_ff(double ca, double cm, int m_outer, double m_inner) {
  const double mo = m_outer;
  return ca * mo + cost_fgmres_real(ca, cm, m_inner) * mo + 2.5 * mo * mo;
}

double cost_nested_fr(double ca, double cm, int m_outer, double m_inner) {
  const double mo = m_outer;
  return ca * mo + cost_richardson_real(ca, cm, m_inner) * mo + 2.5 * mo * mo;
}

double cost_nested(double ca, double cm, const std::vector<LevelCost>& levels) {
  if (levels.empty()) throw std::invalid_argument("cost_nested: no levels");
  // Innermost applies the primary preconditioner directly.
  const LevelCost& last = levels.back();
  double inner = (last.kind == 'R') ? cost_richardson(ca, cm, last.m)
                                    : cost_fgmres(ca, cm, last.m);
  for (std::size_t d = levels.size() - 1; d-- > 0;) {
    const LevelCost& lv = levels[d];
    const double md = lv.m;
    if (lv.kind == 'R') {
      // Richardson above another solver: m preconditioner (inner-solver)
      // calls, m−1 SpMVs, 4(m−1) vector traffic.
      inner = ca * (md - 1.0) + inner * md + 4.0 * (md - 1.0);
    } else {
      inner = ca * md + inner * md + 2.5 * md * md;
    }
  }
  return inner;
}

SplitAdvice advise_split(double ca, double cm, int m, int richardson_limit) {
  SplitAdvice adv;
  adv.flat_cost = cost_fgmres(ca, cm, m);
  adv.best_cost = adv.flat_cost;
  adv.m_outer = m;
  adv.m_inner = 1;

  for (int mo = 2; mo <= m / 2; ++mo) {
    // The model fixes the total number of primary applications m = m̄·m̿,
    // so the inner dimension is continuous here; we report the ceiling.
    const double mi = static_cast<double>(m) / mo;
    const int mi_int = static_cast<int>(std::ceil(mi));
    const double cf = cost_nested_ff(ca, cm, mo, mi);
    if (cf < adv.best_cost) {
      adv.best_cost = cf;
      adv.split = true;
      adv.m_outer = mo;
      adv.m_inner = mi_int;
      adv.inner_kind = 'F';
    }
    if (mi < richardson_limit) {
      const double cr = cost_nested_fr(ca, cm, mo, mi);
      if (cr < adv.best_cost) {
        adv.best_cost = cr;
        adv.split = true;
        adv.m_outer = mo;
        adv.m_inner = mi_int;
        adv.inner_kind = 'R';
      }
    }
  }
  return adv;
}

std::string advice_summary(const SplitAdvice& a) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed;
  if (!a.split) {
    os << "keep flat FGMRES (cost " << a.flat_cost << ")";
  } else {
    os << "split into (F^" << a.m_outer << ", " << a.inner_kind << "^" << a.m_inner
       << ", M): cost " << a.best_cost << " vs flat " << a.flat_cost << " ("
       << 100.0 * (1.0 - a.best_cost / a.flat_cost) << "% fewer accesses)";
  }
  return os.str();
}

}  // namespace nk
