// Solver/preconditioner descriptors — the data-driven face of the library.
//
// A SolverSpec names a complete solver configuration (kind, precision axis,
// restart/inner-m, termination, batching, preconditioner) as a VALUE, and
// round-trips through a compact text form so CLI flags, the conformance
// catalog, bench JSON, and a config-file-driven service all speak one
// language:
//
//   "f3r@fp16"                      fp16-F3R with its default bj precond
//   "fgmres64/bj-ilu0@fp16"         fp64 FGMRES(64), M = ILU(0) stored fp16
//   "ir-gmres8@fp32"                fp64 refinement + fp32 GMRES(8) inner
//   "krylov@fp16;nblocks=4"         CG (SPD) / BiCGStab with fp16-stored M
//   "cg/jacobi;wave=8;rtol=1e-6"    batched CG as 8-wide ragged waves
//
// Grammar (all names case-insensitive, canonicalized to lower case):
//
//   solver-spec  := solver-token [ '/' precond-token ] [ ':' backend ]
//                   ( ';' option )*
//   precond-spec := precond-token ( ';' option )*
//   solver-token := name [ '@' prec ]      name may end in digits = m
//   precond-token:= name [ '@' prec ]      (registered names match exactly)
//   option       := key '=' value | flag
//   prec         := fp64 | fp32 | fp16
//   backend      := host | omp | serial    (base/backend.hpp)
//
// Solver options: rtol=, max-iters=, restarts=, wave=, masked, nohist,
// layout= (rowmajor|colmajor survivor-panel storage; base/panel.hpp),
// backend= (execution-space backend; ":NAME" on the head is an alias, and
// giving both is an error).  An unset backend means "resolve at build
// time": Session falls back to NKRYLOV_BACKEND, then the host default.
// Preconditioner options: nblocks=, omega=, degree=.  max-iters= caps the
// flat solvers; the nested kinds bound their outer work by restarts=
// instead (the outer FGMRES runs at most (restarts+1)·m1 iterations) and
// ignore max-iters.  Options a kind has no use for are accepted and
// ignored, so one option tail can serve a whole sweep of kinds.
//
// The solver token's '@prec' is the kind's PRECISION AXIS: the storage
// precision of M for the flat Krylov solvers (the paper's "fp16-CG"), the
// inner working precision for ir-gmres, the lowest precision of the nesting
// for f3r.  A '@prec' on the precond token overrides the storage precision
// of M specifically (issue-form "fgmres64/bj-ilu0@fp16").  The paper's
// legacy names parse as aliases: "fp16-F3R" == "f3r@fp16", "fp32-CG" ==
// "cg@fp32", while the Table 4 variants ("F2", "fp16-F3", ...) are
// registered kinds of their own.
//
// Name resolution consults the registry (core/registry.hpp): an exact
// registered name wins ("f2" is the Table 4 variant, not "f" with m = 2);
// otherwise a trailing digit run is split off as m ("fgmres64"); otherwise
// an "fpNN-" prefix is split off as the precision axis ("fp16-f3r").
// parse() throws SpecError on anything else, naming the registered kinds.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/backend.hpp"
#include "base/half.hpp"
#include "base/panel.hpp"

namespace nk {

/// Error type for malformed or unknown spec strings.  Subclasses
/// std::invalid_argument so legacy catch sites keep working.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Description of a primary preconditioner M.
struct PrecondSpec {
  std::string kind = "bj";  ///< registered kind ("bj" = ILU(0)/IC(0) by symmetry)
  /// Storage precision of the minted apply handles; unset = the owning
  /// solver's precision axis (flat solvers) or the nesting's own choice.
  std::optional<Prec> storage;
  int nblocks = 0;    ///< block count for block-Jacobi/SSOR (0 = kind default)
  double omega = 1.0; ///< SSOR relaxation factor
  int degree = 2;     ///< Neumann-series degree

  // Fault-injection harness hooks (core/fault.hpp; only honored by the
  // test-only "fault" kind, which register_builtin_kinds never installs).
  /// Fault schedule, e.g. "nan@3" or "inf@0@fp16" (kind@apply-index[@prec]).
  std::string inject;
  /// Kind of the wrapped inner preconditioner ("" = "bj").
  std::string inner;

  /// Parse "kind[@prec][;option...]".  Throws SpecError.
  static PrecondSpec parse(const std::string& text);
  /// Canonical text form; parse(to_string()) reproduces *this exactly.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const PrecondSpec&) const = default;
};

/// Description of a complete solver configuration.
struct SolverSpec {
  std::string kind = "f3r";  ///< registered kind
  Prec prec = Prec::FP64;    ///< precision axis (meaning depends on kind)
  int m = 0;                 ///< restart / inner-m (0 = kind default)

  // Termination (the paper's defaults).
  double rtol = 1e-8;        ///< on the true fp64 relative residual
  int max_iters = 19200;     ///< flat-solver iteration cap
  int max_restarts = 3;      ///< nested-solver restart cap
  bool record_history = true;

  // Batching (solve_many scheduling; see CgSolver).
  int wave = 0;              ///< ragged-wave width (0 = whole batch at once)
  bool compact = true;       ///< false = masked-lockstep A/B reference path
  /// Survivor-panel layout for the batched solvers ("layout=rowmajor" /
  /// "layout=colmajor"; see base/panel.hpp).  Unset = the workspace default
  /// (row-major).  Iterates are bit-identical across layouts.
  std::optional<PanelLayout> layout;

  // Resilience policy (the Session-level recovery ladder; see README
  // "Failure modes & recovery").
  /// Stagnation guard: stop with SolveStatus::kStagnated after this many
  /// consecutive progress checks without relative-residual improvement
  /// (";stagnate-window=50").  0 = off — the conformance-pinned default.
  int stagnate_window = 0;
  /// Precision-escalation fallback (";fallback=fp32,fp64"): when a solve
  /// ends in non_finite or breakdown, Session retries the same problem at
  /// each listed precision axis in order, recording the failed attempts in
  /// SolveResult::attempts.  Empty = no retries (default).
  std::vector<Prec> fallback;

  /// Execution-space backend (";backend=serial" or the ":serial" suffix).
  /// Unset = resolve at build time (Session: NKRYLOV_BACKEND env, else
  /// host) — and to_string() omits it, so legacy spec strings stay
  /// byte-identical.
  std::optional<Backend> backend;

  PrecondSpec precond;       ///< the primary preconditioner M

  /// Parse the grammar above.  Throws SpecError.
  static SolverSpec parse(const std::string& text);
  /// Canonical text form; parse(to_string()) reproduces *this exactly.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const SolverSpec&) const = default;
};

/// Free-function spellings of the static parsers.
SolverSpec parse_solver_spec(const std::string& text);
PrecondSpec parse_precond_spec(const std::string& text);

/// CLI front doors: parse or print a one-line error naming `flag`, the
/// offending value, and the registered kinds, then exit(2) — the same
/// error discipline as the Options numeric parsers (never an uncaught
/// throw that looks like a crash and hides the flag).
SolverSpec parse_solver_spec_cli(const std::string& flag, const std::string& text);
PrecondSpec parse_precond_spec_cli(const std::string& flag, const std::string& text);

}  // namespace nk
