#include "core/problem.hpp"

#include <algorithm>

#include "base/rng.hpp"
#include "core/fingerprint.hpp"
#include "sparse/gen/suite_standins.hpp"
#include "sparse/scaling.hpp"

namespace nk {

PreparedProblem prepare_problem(std::string name, CsrMatrix<double> a, bool symmetric,
                                double alpha_ilu, double alpha_ainv, std::uint64_t rhs_seed,
                                bool use_sell) {
  PreparedProblem p;
  p.name = std::move(name);
  p.symmetric = symmetric;
  p.alpha_ilu = alpha_ilu;
  p.alpha_ainv = alpha_ainv;
  a.sort_rows();
  diagonal_scale_symmetric(a);  // the paper scales every matrix
  const index_t n = a.nrows;
  p.a = std::make_shared<MultiPrecMatrix>(std::move(a), use_sell);
  p.b = random_vector<double>(static_cast<std::size_t>(n), rhs_seed, 0.0, 1.0);
  p.fingerprint = matrix_fingerprint(p.a->csr_fp64(), symmetric);
  return p;
}

PreparedProblem prepare_standin(const std::string& paper_name, int scale,
                                std::uint64_t rhs_seed, bool use_sell) {
  gen::Problem prob = gen::make_problem(paper_name, scale);
  return prepare_problem(prob.spec.paper_name, std::move(prob.a), prob.spec.symmetric,
                         prob.spec.alpha_ilu, prob.spec.alpha_ainv, rhs_seed, use_sell);
}

std::vector<double> batch_rhs(const PreparedProblem& p, int k, std::uint64_t seed0) {
  const std::size_t n = p.b.size();
  std::vector<double> B(n * static_cast<std::size_t>(std::max(k, 0)));
  for (int c = 0; c < k; ++c) {
    const auto col = random_vector<double>(n, seed0 + static_cast<std::uint64_t>(c), 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  return B;
}

}  // namespace nk
