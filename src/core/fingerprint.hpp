// Matrix fingerprinting — the content-addressed identity of a linear
// system, shared by the library and the daemon.
//
// Two subsystems key caches on "the same matrix": nkrylovd's ProblemTable
// (prepared problems, leased Sessions) and the autotuner's perf-DB
// (core/tune/perf_db.hpp — a repeat matrix skips probing).  Both use a
// 64-bit FNV-1a hash of the matrix — dimensions, structure, values, and
// the symmetry flag — so two callers presenting the same system share one
// decision and the second one pays nothing.  Server-generated stand-in
// matrices are keyed by their generator coordinates (name, scale) instead,
// so a repeat PUTGEN does not even pay generation.
//
// FNV-1a over the raw little-endian bytes is deliberate: every consumer
// lives on one machine (library process, Unix-domain socket daemon), so
// byte-identical input data IS the equality we want — no canonicalization
// pass, no tolerance.  A hash collision between distinct matrices is
// accepted at the usual 2^-64 odds, like every content-addressed cache.
//
// Hoisted out of core/service/ (PR 10) so library-only builds fingerprint
// matrices without linking the service layer; the old nk::service names
// remain as aliases in core/service/fingerprint.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sparse/csr.hpp"

namespace nk {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Fold `bytes` raw bytes into a running FNV-1a state.
[[nodiscard]] inline std::uint64_t fingerprint_mix(const void* data, std::size_t bytes,
                                                   std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Fingerprint of a CSR matrix (+ its symmetry claim — the same values
/// solved as SPD and as general are different problems).
[[nodiscard]] std::uint64_t matrix_fingerprint(const CsrMatrix<double>& a, bool symmetric);

/// Fingerprint of a generated stand-in, keyed by generator coordinates so
/// repeat generations (daemon PUTGEN) skip generation entirely.
[[nodiscard]] std::uint64_t standin_fingerprint(const std::string& name, int scale);

/// Canonical 16-digit lower-case hex form (the wire/handle/DB spelling).
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

/// Strict inverse of fingerprint_hex: exactly 1–16 lower/upper hex digits,
/// no sign, no prefix, no trailing garbage.  Returns false on anything else.
[[nodiscard]] bool parse_fingerprint_hex(std::string_view text, std::uint64_t& out);

}  // namespace nk
