#include "core/f3r.hpp"

namespace nk {

std::string f3r_name(Prec lowest) { return std::string(prec_name(lowest)) + "-F3R"; }

NestedConfig f3r_config(Prec lowest, const F3rParams& p) {
  NestedConfig cfg;
  cfg.name = f3r_name(lowest);

  LevelSpec l1;  // outermost: always fp64 FGMRES
  l1.kind = SolverKind::FGMRES;
  l1.m = p.m1;
  l1.mat = Prec::FP64;
  l1.vec = Prec::FP64;

  LevelSpec l2;
  l2.kind = SolverKind::FGMRES;
  l2.m = p.m2;

  LevelSpec l3;
  l3.kind = SolverKind::FGMRES;
  l3.m = p.m3;

  LevelSpec l4;
  l4.kind = SolverKind::Richardson;
  l4.m = p.m4;
  l4.cycle = p.cycle;
  l4.adaptive = p.adaptive;
  l4.fixed_weight = p.fixed_weight;

  switch (lowest) {
    case Prec::FP64:
      l2.mat = l2.vec = Prec::FP64;
      l3.mat = l3.vec = Prec::FP64;
      l4.mat = l4.vec = Prec::FP64;
      cfg.precond_storage = Prec::FP64;
      break;
    case Prec::FP32:
      l2.mat = l2.vec = Prec::FP32;
      l3.mat = l3.vec = Prec::FP32;
      l4.mat = l4.vec = Prec::FP32;
      cfg.precond_storage = Prec::FP32;
      break;
    case Prec::FP16:  // Table 1
      l2.mat = l2.vec = Prec::FP32;
      l3.mat = Prec::FP16;
      l3.vec = Prec::FP32;
      l4.mat = l4.vec = Prec::FP16;
      cfg.precond_storage = Prec::FP16;
      break;
  }
  cfg.levels = {l1, l2, l3, l4};
  return cfg;
}

Termination f3r_termination(double rtol) {
  Termination t;
  t.rtol = rtol;
  t.max_restarts = 3;  // "F3R was restarted only three times"
  return t;
}

}  // namespace nk
