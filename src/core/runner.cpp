#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/rng.hpp"
#include "base/timer.hpp"
#include "core/cost_model.hpp"
#include "krylov/fgmres.hpp"
#include "precond/ainv.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "sparse/gen/suite_standins.hpp"
#include "sparse/scaling.hpp"
#include "sparse/spmv.hpp"

namespace nk {

PreparedProblem prepare_problem(std::string name, CsrMatrix<double> a, bool symmetric,
                                double alpha_ilu, double alpha_ainv, std::uint64_t rhs_seed,
                                bool use_sell) {
  PreparedProblem p;
  p.name = std::move(name);
  p.symmetric = symmetric;
  p.alpha_ilu = alpha_ilu;
  p.alpha_ainv = alpha_ainv;
  a.sort_rows();
  diagonal_scale_symmetric(a);  // the paper scales every matrix
  const index_t n = a.nrows;
  p.a = std::make_shared<MultiPrecMatrix>(std::move(a), use_sell);
  p.b = random_vector<double>(static_cast<std::size_t>(n), rhs_seed, 0.0, 1.0);
  return p;
}

PreparedProblem prepare_standin(const std::string& paper_name, int scale,
                                std::uint64_t rhs_seed, bool use_sell) {
  gen::Problem prob = gen::make_problem(paper_name, scale);
  return prepare_problem(prob.spec.paper_name, std::move(prob.a), prob.spec.symmetric,
                         prob.spec.alpha_ilu, prob.spec.alpha_ainv, rhs_seed, use_sell);
}

std::shared_ptr<PrimaryPrecond> make_primary(const PreparedProblem& p, PrecondKind kind,
                                             int nblocks) {
  const CsrMatrix<double>& a = p.a->csr_fp64();
  switch (kind) {
    case PrecondKind::BlockJacobiIluIc:
      if (p.symmetric) {
        BlockJacobiIc0::Config c;
        c.nblocks = nblocks;
        c.alpha = p.alpha_ilu;
        return std::make_shared<BlockJacobiIc0>(a, c);
      } else {
        BlockJacobiIlu0::Config c;
        c.nblocks = nblocks;
        c.alpha = p.alpha_ilu;
        return std::make_shared<BlockJacobiIlu0>(a, c);
      }
    case PrecondKind::SdAinv: {
      SdAinv::Config c;
      c.alpha = p.alpha_ainv;
      c.symmetric = p.symmetric;
      return std::make_shared<SdAinv>(a, c);
    }
    case PrecondKind::Jacobi:
      return std::make_shared<JacobiPrecond>(a);
  }
  throw std::logic_error("make_primary: bad kind");
}

namespace {

/// Finalize a SolveResult with timing + invocation-counter deltas.
template <class SolveFn>
SolveResult timed_solve(PrimaryPrecond& m, const std::string& name, SolveFn&& fn) {
  SolveResult res;
  const std::uint64_t calls0 = m.invocations();
  WallTimer t;
  res = fn();
  res.seconds = t.seconds();
  res.solver = name;
  res.precond_invocations = m.invocations() - calls0;
  return res;
}

}  // namespace

SolveResult run_cg(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                   const FlatSolverCaps& caps) {
  auto handle = m.make_apply<double>(storage);
  // Honor the prepared problem's storage format (CSR or SELL), like the
  // nested solvers always did.
  auto op = p.a->make_operator<double>(Prec::FP64);
  CgSolver<double>::Config cfg;
  cfg.rtol = caps.rtol;
  cfg.max_iters = caps.max_iters;
  cfg.record_history = true;
  CgSolver<double> solver(*op, *handle, cfg);
  std::vector<double> x(p.b.size(), 0.0);
  auto res = timed_solve(m, std::string(prec_name(storage)) + "-CG", [&] {
    return solver.solve(std::span<const double>(p.b), std::span<double>(x));
  });
  res.final_relres = relative_residual(p.a->csr_fp64(), std::span<const double>(x),
                                       std::span<const double>(p.b));
  res.converged = res.converged && res.final_relres < caps.rtol * 1.5;
  res.spmv_count = op->spmv_count();
  return res;
}

SolveResult run_bicgstab(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                         const FlatSolverCaps& caps) {
  auto handle = m.make_apply<double>(storage);
  auto op = p.a->make_operator<double>(Prec::FP64);
  BiCgStabSolver<double>::Config cfg;
  cfg.rtol = caps.rtol;
  cfg.max_iters = caps.max_iters / 2;  // 2 preconditioner calls per iteration
  cfg.record_history = true;
  BiCgStabSolver<double> solver(*op, *handle, cfg);
  std::vector<double> x(p.b.size(), 0.0);
  auto res = timed_solve(m, std::string(prec_name(storage)) + "-BiCGStab", [&] {
    return solver.solve(std::span<const double>(p.b), std::span<double>(x));
  });
  res.final_relres = relative_residual(p.a->csr_fp64(), std::span<const double>(x),
                                       std::span<const double>(p.b));
  res.converged = res.converged && res.final_relres < caps.rtol * 1.5;
  res.spmv_count = op->spmv_count();
  return res;
}

SolveResult run_fgmres_restarted(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                                 int restart, const FlatSolverCaps& caps) {
  auto handle = m.make_apply<double>(storage);
  auto op_owned = p.a->make_operator<double>(Prec::FP64);
  Operator<double>& op = *op_owned;
  FgmresSolver<double> solver(op, *handle, FgmresSolver<double>::Config{restart});
  std::vector<double> x(p.b.size(), 0.0);

  const std::string name =
      std::string(prec_name(storage)) + "-FGMRES(" + std::to_string(restart) + ")";
  auto res = timed_solve(m, name, [&] {
    SolveResult r;
    const double bnorm = static_cast<double>(blas::nrm2(std::span<const double>(p.b)));
    const double bref = bnorm > 0.0 ? bnorm : 1.0;
    const double target = caps.rtol * bref;
    std::vector<double> estimates;
    solver.set_iteration_log(&estimates);
    bool x_nonzero = false;
    while (r.iterations < caps.max_iters) {
      const auto stats = solver.run(std::span<const double>(p.b), std::span<double>(x), target,
                                    x_nonzero);
      r.iterations += stats.iters;
      x_nonzero = true;
      const double relres = relative_residual(p.a->csr_fp64(), std::span<const double>(x),
                                              std::span<const double>(p.b));
      r.final_relres = relres;
      if (relres < caps.rtol) {
        r.converged = true;
        break;
      }
      if (!std::isfinite(relres) || stats.iters == 0) break;
      ++r.restarts;
    }
    solver.set_iteration_log(nullptr);
    for (double e : estimates) r.history.push_back(e / bref);
    return r;
  });
  res.spmv_count = op.spmv_count();
  return res;
}

namespace {

template <class VT>
SolveResult ir_gmres_impl(const PreparedProblem& p, PrimaryPrecond& m, Prec prec, int inner_m,
                          const FlatSolverCaps& caps) {
  const std::size_t n = p.b.size();
  auto op = p.a->make_operator<VT>(prec);
  auto handle = m.make_apply<VT>(prec);
  FgmresSolver<VT> inner(*op, *handle, typename FgmresSolver<VT>::Config{inner_m});
  CsrOperator<double, double> op64(p.a->csr_fp64());

  SolveResult r;
  std::vector<double> x(n, 0.0), rd(n);
  std::vector<VT> rl(n), cl(n);
  const double bnorm = static_cast<double>(blas::nrm2(std::span<const double>(p.b)));
  const double bref = bnorm > 0.0 ? bnorm : 1.0;
  const int max_outer = std::max(1, caps.max_iters / inner_m);
  for (int outer = 0; outer < max_outer; ++outer) {
    op64.residual(std::span<const double>(p.b), std::span<const double>(x),
                  std::span<double>(rd));
    const double relres = static_cast<double>(blas::nrm2(std::span<const double>(rd))) / bref;
    r.final_relres = relres;
    r.history.push_back(relres);
    if (relres < caps.rtol) {
      r.converged = true;
      break;
    }
    if (!std::isfinite(relres)) break;
    // Low-precision correction solve A c ≈ r.  The residual is normalized
    // before the downcast — late-stage residuals (~1e-8·‖b‖) would land in
    // fp16's subnormal range and stall the refinement otherwise.
    const double rnorm = static_cast<double>(blas::nrm2(std::span<const double>(rd)));
    if (rnorm > 0.0) blas::scal(1.0 / rnorm, std::span<double>(rd));
    blas::convert(std::span<const double>(rd), std::span<VT>(rl));
    inner.apply(std::span<const VT>(rl), std::span<VT>(cl));
    blas::axpy(rnorm, std::span<const VT>(cl), std::span<double>(x));
    r.iterations = outer + 1;
  }
  r.spmv_count = op->spmv_count() + op64.spmv_count();
  return r;
}

}  // namespace

SolveResult run_ir_gmres(const PreparedProblem& p, PrimaryPrecond& m, Prec inner, int inner_m,
                         const FlatSolverCaps& caps) {
  const std::string name = std::string(prec_name(inner)) + "-IR-GMRES(" +
                           std::to_string(inner_m) + ")";
  return timed_solve(m, name, [&] {
    switch (inner) {
      case Prec::FP64: return ir_gmres_impl<double>(p, m, inner, inner_m, caps);
      case Prec::FP32: return ir_gmres_impl<float>(p, m, inner, inner_m, caps);
      case Prec::FP16: return ir_gmres_impl<half>(p, m, inner, inner_m, caps);
    }
    throw std::logic_error("run_ir_gmres: bad precision");
  });
}

SolveResult run_nested(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                       const NestedConfig& cfg, const Termination& term) {
  NestedSolver solver(p.a, m, cfg);
  std::vector<double> x(p.b.size(), 0.0);
  const std::uint64_t calls0 = m->invocations();
  SolveResult res = solver.solve(std::span<const double>(p.b), std::span<double>(x), term);
  res.precond_invocations = m->invocations() - calls0;
  return res;
}

// ------------------------------------------------------------------ batched

std::vector<double> batch_rhs(const PreparedProblem& p, int k, std::uint64_t seed0) {
  const std::size_t n = p.b.size();
  std::vector<double> B(n * static_cast<std::size_t>(std::max(k, 0)));
  for (int c = 0; c < k; ++c) {
    const auto col = random_vector<double>(n, seed0 + static_cast<std::uint64_t>(c), 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  return B;
}

namespace {

/// Shared tail of the batched flat-solver runners: per-column true
/// residuals, batch-total counters, and naming.
void finalize_many(std::vector<SolveResult>& res, const PreparedProblem& p,
                   std::span<const double> B, std::span<const double> X,
                   const std::string& name, double rtol, double seconds,
                   std::uint64_t m_calls, std::uint64_t spmvs) {
  const std::size_t n = p.b.size();
  for (std::size_t c = 0; c < res.size(); ++c) {
    res[c].solver = name;
    res[c].seconds = seconds;
    res[c].precond_invocations = m_calls;
    res[c].spmv_count = spmvs;
    res[c].final_relres =
        relative_residual(p.a->csr_fp64(), X.subspan(c * n, n), B.subspan(c * n, n));
    res[c].converged = res[c].converged && res[c].final_relres < rtol * 1.5;
  }
}

}  // namespace

std::vector<SolveResult> run_cg_many(const PreparedProblem& p, PrimaryPrecond& m,
                                     Prec storage, std::span<const double> B,
                                     std::span<double> X, int k,
                                     const FlatSolverCaps& caps, int wave) {
  auto handle = m.make_apply<double>(storage);
  auto op = p.a->make_operator<double>(Prec::FP64);
  CgSolver<double>::Config cfg;
  cfg.rtol = caps.rtol;
  cfg.max_iters = caps.max_iters;
  cfg.record_history = true;
  CgSolver<double> solver(*op, *handle, cfg);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(p.b.size());
  const std::uint64_t calls0 = m.invocations();
  WallTimer t;
  auto res = solver.solve_many(B.data(), n, X.data(), n, k, wave);
  finalize_many(res, p, B, X, std::string(prec_name(storage)) + "-CG", caps.rtol,
                t.seconds(), m.invocations() - calls0, op->spmv_count());
  return res;
}

std::vector<SolveResult> run_bicgstab_many(const PreparedProblem& p, PrimaryPrecond& m,
                                           Prec storage, std::span<const double> B,
                                           std::span<double> X, int k,
                                           const FlatSolverCaps& caps, int wave) {
  auto handle = m.make_apply<double>(storage);
  auto op = p.a->make_operator<double>(Prec::FP64);
  BiCgStabSolver<double>::Config cfg;
  cfg.rtol = caps.rtol;
  cfg.max_iters = caps.max_iters / 2;  // 2 preconditioner calls per iteration
  cfg.record_history = true;
  BiCgStabSolver<double> solver(*op, *handle, cfg);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(p.b.size());
  const std::uint64_t calls0 = m.invocations();
  WallTimer t;
  auto res = solver.solve_many(B.data(), n, X.data(), n, k, wave);
  finalize_many(res, p, B, X, std::string(prec_name(storage)) + "-BiCGStab", caps.rtol,
                t.seconds(), m.invocations() - calls0, op->spmv_count());
  return res;
}

std::vector<SolveResult> run_nested_many(const PreparedProblem& p,
                                         std::shared_ptr<PrimaryPrecond> m,
                                         const NestedConfig& cfg, std::span<const double> B,
                                         std::span<double> X, int k,
                                         const Termination& term) {
  SolverWorkspace ws;
  NestedSolver solver(p.a, m, cfg, &ws);
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(p.b.size());
  const std::uint64_t calls0 = m->invocations();
  auto res = solver.solve_many(B.data(), n, X.data(), n, k, term);
  const std::uint64_t calls = m->invocations() - calls0;
  for (auto& r : res) r.precond_invocations = calls;
  return res;
}

BestSearchResult run_f3r_best(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                              double rtol, int budget) {
  // Candidate box from the paper's fp16-F3R-best rows: m2 ∈ 6..10,
  // m3 ∈ 2..6, m4 ∈ {1,2}; ordered by the memory-access model so the
  // cheapest configurations are tried first under a budget.
  struct Cand {
    F3rParams prm;
    double model_cost;
  };
  const double ca = access_constant(p.a->csr_fp64().nnz_per_row(), 2);  // fp16 values
  const double cm = ca;  // M has A-like sparsity for ILU(0)/IC(0)
  std::vector<Cand> cands;
  for (int m2 : {8, 6, 7, 9, 10})
    for (int m3 : {4, 2, 3, 5, 6})
      for (int m4 : {2, 1}) {
        F3rParams prm;
        prm.m2 = m2;
        prm.m3 = m3;
        prm.m4 = m4;
        const double cost = cost_nested(
            ca, cm,
            {{'F', prm.m2}, {'F', prm.m3}, {'R', prm.m4}});
        cands.push_back({prm, cost});
      }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.model_cost < b.model_cost; });

  BestSearchResult best;
  best.result.seconds = std::numeric_limits<double>::max();
  for (const Cand& c : cands) {
    if (best.tried >= budget) break;
    ++best.tried;
    auto res = run_nested(p, m, f3r_config(Prec::FP16, c.prm), f3r_termination(rtol));
    if (res.converged &&
        (!best.result.converged || res.seconds < best.result.seconds)) {
      best.result = res;
      best.params = c.prm;
      best.param_label = std::to_string(c.prm.m2) + "-" + std::to_string(c.prm.m3) + "-" +
                         std::to_string(c.prm.m4);
    }
  }
  if (best.param_label.empty()) best.param_label = "-";
  best.result.solver = "fp16-F3R-best";
  return best;
}

}  // namespace nk
