#include "core/runner.hpp"

#include <algorithm>
#include <limits>

#include "core/cost_model.hpp"

namespace nk {

namespace {

/// The SolverSpec equivalent of a flat run_* call.
SolverSpec flat_spec(const char* kind, Prec storage, const FlatSolverCaps& caps, int m = 0,
                     int wave = 0) {
  SolverSpec s;
  s.kind = kind;
  s.prec = storage;
  s.m = m;
  s.rtol = caps.rtol;
  s.max_iters = caps.max_iters;
  s.wave = wave;
  return s;
}

}  // namespace

std::shared_ptr<PrimaryPrecond> make_primary(const PreparedProblem& p, PrecondKind kind,
                                             int nblocks) {
  PrecondSpec s;
  s.kind = kind == PrecondKind::BlockJacobiIluIc ? "bj"
           : kind == PrecondKind::SdAinv         ? "sd-ainv"
                                                 : "jacobi";
  s.nblocks = nblocks;
  return registry().make_precond(s, p);
}

SolveResult run_cg(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                   const FlatSolverCaps& caps) {
  return Session(borrow_problem(p), flat_spec("cg", storage, caps), borrow_precond(m))
      .solve();
}

SolveResult run_bicgstab(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                         const FlatSolverCaps& caps) {
  return Session(borrow_problem(p), flat_spec("bicgstab", storage, caps), borrow_precond(m))
      .solve();
}

SolveResult run_fgmres_restarted(const PreparedProblem& p, PrimaryPrecond& m, Prec storage,
                                 int restart, const FlatSolverCaps& caps) {
  return Session(borrow_problem(p), flat_spec("fgmres", storage, caps, restart),
                 borrow_precond(m))
      .solve();
}

SolveResult run_ir_gmres(const PreparedProblem& p, PrimaryPrecond& m, Prec inner,
                         int inner_m, const FlatSolverCaps& caps) {
  return Session(borrow_problem(p), flat_spec("ir-gmres", inner, caps, inner_m),
                 borrow_precond(m))
      .solve();
}

SolveResult run_nested(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                       const NestedConfig& cfg, const Termination& term) {
  return Session(borrow_problem(p), cfg, term, std::move(m)).solve();
}

std::vector<SolveResult> run_cg_many(const PreparedProblem& p, PrimaryPrecond& m,
                                     Prec storage, std::span<const double> B,
                                     std::span<double> X, int k,
                                     const FlatSolverCaps& caps, int wave) {
  return Session(borrow_problem(p), flat_spec("cg", storage, caps, 0, wave),
                 borrow_precond(m))
      .solve_many(B, X, k);
}

std::vector<SolveResult> run_bicgstab_many(const PreparedProblem& p, PrimaryPrecond& m,
                                           Prec storage, std::span<const double> B,
                                           std::span<double> X, int k,
                                           const FlatSolverCaps& caps, int wave) {
  return Session(borrow_problem(p), flat_spec("bicgstab", storage, caps, 0, wave),
                 borrow_precond(m))
      .solve_many(B, X, k);
}

std::vector<SolveResult> run_nested_many(const PreparedProblem& p,
                                         std::shared_ptr<PrimaryPrecond> m,
                                         const NestedConfig& cfg, std::span<const double> B,
                                         std::span<double> X, int k,
                                         const Termination& term) {
  return Session(borrow_problem(p), cfg, term, std::move(m)).solve_many(B, X, k);
}

BestSearchResult run_f3r_best(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
                              double rtol, int budget) {
  // Candidate box from the paper's fp16-F3R-best rows: m2 ∈ 6..10,
  // m3 ∈ 2..6, m4 ∈ {1,2}; ordered by the memory-access model so the
  // cheapest configurations are tried first under a budget.
  struct Cand {
    F3rParams prm;
    double model_cost;
  };
  const double ca = access_constant(p.a->csr_fp64().nnz_per_row(), 2);  // fp16 values
  const double cm = ca;  // M has A-like sparsity for ILU(0)/IC(0)
  std::vector<Cand> cands;
  for (int m2 : {8, 6, 7, 9, 10})
    for (int m3 : {4, 2, 3, 5, 6})
      for (int m4 : {2, 1}) {
        F3rParams prm;
        prm.m2 = m2;
        prm.m3 = m3;
        prm.m4 = m4;
        const double cost = cost_nested(
            ca, cm,
            {{'F', prm.m2}, {'F', prm.m3}, {'R', prm.m4}});
        cands.push_back({prm, cost});
      }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& a, const Cand& b) { return a.model_cost < b.model_cost; });

  BestSearchResult best;
  best.result.seconds = std::numeric_limits<double>::max();
  for (const Cand& c : cands) {
    if (best.tried >= budget) break;
    ++best.tried;
    auto res = run_nested(p, m, f3r_config(Prec::FP16, c.prm), f3r_termination(rtol));
    if (res.converged &&
        (!best.result.converged || res.seconds < best.result.seconds)) {
      best.result = res;
      best.params = c.prm;
      best.param_label = std::to_string(c.prm.m2) + "-" + std::to_string(c.prm.m3) + "-" +
                         std::to_string(c.prm.m4);
    }
  }
  if (best.param_label.empty()) best.param_label = "-";
  best.result.solver = "fp16-F3R-best";
  return best;
}

}  // namespace nk
