// The nested Krylov framework: composing solvers as preconditioners.
//
// A nested solver (S⁽¹⁾, S⁽²⁾, …, S⁽ᴰ⁾, M) in the paper's tuple notation is
// realized here as an object tree: each level owns a typed solver
// (FGMRES or Richardson) whose preconditioner is either the next level
// (wrapped in a precision bridge when the vector precisions differ) or the
// primary preconditioner M at the innermost level.  Convergence is checked
// only in the outermost solver; restarting re-runs the whole tuple.
//
// Per the paper's Table 1, every level declares the storage precision of A
// (a dedicated CSR/SELL copy is created per precision actually used) and
// of its vectors; the innermost level also fixes the storage precision of
// M.  Example — fp16-F3R:
//
//   level 0: FGMRES(100)  A fp64, vectors fp64
//   level 1: FGMRES(8)    A fp32, vectors fp32
//   level 2: FGMRES(4)    A fp16, vectors fp32  (SpMV runs in fp32)
//   level 3: Richardson(2) A fp16, vectors fp16, M fp16, adaptive ω (c=64)
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "base/half.hpp"
#include "base/timer.hpp"
#include "base/workspace.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/history.hpp"
#include "krylov/operator.hpp"
#include "krylov/richardson.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"
#include "sparse/sell.hpp"

namespace nk {

/// Matrix copies per storage precision, CSR and (optionally) sliced
/// ELLPACK.  F3R "requires storing matrix values in fp64, fp32, and fp16";
/// copies are created lazily for the precisions a configuration uses.
class MultiPrecMatrix {
 public:
  /// `use_sell` switches every operator to the sliced-ELLPACK kernels (the
  /// paper's GPU storage; chunk 32).
  explicit MultiPrecMatrix(CsrMatrix<double> a, bool use_sell = false, int sell_chunk = 32);

  [[nodiscard]] index_t size() const { return a64_.nrows; }
  [[nodiscard]] const CsrMatrix<double>& csr_fp64() const { return a64_; }
  [[nodiscard]] bool uses_sell() const { return use_sell_; }

  /// Create a typed operator (vector type VT over storage precision `mp`)
  /// whose products run on backend `be`.  The operator references matrix
  /// data owned by this object.
  template <class VT>
  std::unique_ptr<Operator<VT>> make_operator(Prec mp, Backend be = Backend::kHost);

  /// Total bytes of matrix value storage materialized so far (the paper
  /// notes this replication "incurs an overhead" on cache-limited nodes).
  [[nodiscard]] std::size_t value_bytes() const;

 private:
  void ensure(Prec mp);

  CsrMatrix<double> a64_;
  std::optional<CsrMatrix<float>> a32_;
  std::optional<CsrMatrix<half>> a16_;
  bool use_sell_;
  int chunk_;
  std::optional<SellMatrix<double>> s64_;
  std::optional<SellMatrix<float>> s32_;
  std::optional<SellMatrix<half>> s16_;
};

/// Converts between the vector precisions of adjacent nesting levels:
/// implements Preconditioner<Outer> by converting the residual down to the
/// inner precision, invoking the inner solver, and converting the
/// correction back up.  Conversion scratch comes from the (optional)
/// SolverWorkspace so rebuilding a tuple against a new same-sized matrix
/// reuses the buffers.
template <class Outer, class Inner>
class PrecisionBridge final : public Preconditioner<Outer> {
 public:
  explicit PrecisionBridge(Preconditioner<Inner>* inner, SolverWorkspace* ws = nullptr,
                           const std::string& key = "bridge")
      : inner_(inner) {
    const std::size_t n = static_cast<std::size_t>(inner->size());
    SolverWorkspace& w = ws != nullptr ? *ws : own_;
    this->set_backend(w.backend());  // converts dispatch with the pipeline
    rin_ = w.get<Inner>(key + ".rin", n);
    zin_ = w.get<Inner>(key + ".zin", n);
  }

  // The scratch spans point into own_ (or the shared workspace); a copy
  // would alias them.
  PrecisionBridge(const PrecisionBridge&) = delete;
  PrecisionBridge& operator=(const PrecisionBridge&) = delete;

  void apply(std::span<const Outer> r, std::span<Outer> z) override {
    this->kern_table().convert(r, rin_);
    inner_->apply(std::span<const Inner>(rin_.data(), rin_.size()),
                  std::span<Inner>(zin_.data(), zin_.size()));
    this->kern_table().convert(std::span<const Inner>(zin_.data(), zin_.size()), z);
  }
  [[nodiscard]] index_t size() const override { return inner_->size(); }

 private:
  Preconditioner<Inner>* inner_;
  SolverWorkspace own_;
  std::span<Inner> rin_, zin_;
};

enum class SolverKind { FGMRES, Richardson, Chebyshev };

/// One level of the tuple (S⁽ᵈ⁾ and its precisions).
struct LevelSpec {
  SolverKind kind = SolverKind::FGMRES;
  int m = 8;             ///< iterations per invocation
  Prec mat = Prec::FP64;  ///< storage precision of A at this level
  Prec vec = Prec::FP64;  ///< vector precision of this level
  // FGMRES-only: dynamic inner termination (0 = fixed m iterations; the
  // paper's future-work item 2).  Ignored at the outermost level.
  double inner_rtol = 0.0;
  // Richardson-only settings (Algorithm 1):
  int cycle = 64;
  bool adaptive = true;
  float fixed_weight = 1.0f;
  // Chebyshev-only: λmin = λmax / eig_ratio for the ellipse bounds.
  double eig_ratio = 10.0;
};

/// Full nested-solver description.
struct NestedConfig {
  std::string name = "nested";
  std::vector<LevelSpec> levels;   ///< outermost first; levels[0] must be
                                   ///< fp64 FGMRES (the paper's setting)
  Prec precond_storage = Prec::FP64;  ///< storage precision of M
};

/// Termination control for the outer solve.
struct Termination {
  double rtol = 1e-8;    ///< on true fp64 ‖b−Ax‖/‖b‖
  int max_restarts = 3;  ///< the paper restarts F3R at most 3×  (300 outer its)
  bool record_history = true;
  /// Stagnation guard at restart-cycle granularity: stop with kStagnated
  /// after this many consecutive cycles without true-residual progress
  /// (relres failing to improve on 0.99× the best seen).  0 = off.
  int stagnate_window = 0;
};

/// A fully built nested solver, ready to solve repeatedly.
///
/// Setup/solve split: construction is the setup phase — it materializes
/// the per-precision matrix copies (cached inside MultiPrecMatrix), mints
/// the preconditioner apply handles, and acquires every level's Krylov
/// buffers.  With an external SolverWorkspace those buffers are drawn from
/// the shared pool under "lvl<d>."-prefixed keys, so building a second
/// tuple of the same shape (new matrix, same sizes) allocates nothing.
/// solve() and solve_many() then run with zero per-call allocation beyond
/// the optional convergence history.
class NestedSolver {
 public:
  /// Builds all operators, bridges, and level solvers.  `a` and `m` must
  /// outlive this object; `ws` (optional, must outlive this object too)
  /// supplies every level's buffers under `ws_prefix` + "lvl<d>." keys.
  /// Two tuples kept ALIVE on one workspace need distinct prefixes (see
  /// workspace.hpp's one-live-consumer-per-key rule); sequential rebuilds
  /// reuse the default prefix — that is what makes them allocation-free.
  NestedSolver(std::shared_ptr<MultiPrecMatrix> a, std::shared_ptr<PrimaryPrecond> m,
               NestedConfig cfg, SolverWorkspace* ws = nullptr,
               std::string ws_prefix = "");

  /// Solve A x = b (x holds the initial guess, normally 0).  Restarts the
  /// whole tuple up to term.max_restarts times.
  SolveResult solve(std::span<const double> b, std::span<double> x, const Termination& term);

  /// Batched solve: k systems sharing this tuple's setup (column c of B/X
  /// at b + c·ldb / x + c·ldx).  Columns are solved in order through
  /// solve() rather than in lockstep: the innermost Richardson's adaptive
  /// weights (Algorithm 1) are shared state whose update schedule is part
  /// of the math, so per-column agreement with k sequential solve() calls
  /// — which the conformance tests pin exactly — requires preserving the
  /// invocation order.  What batching amortizes here is the setup: matrix
  /// format conversions, preconditioner factorization, and every level's
  /// workspace are built once for the whole batch.
  std::vector<SolveResult> solve_many(const double* b, std::ptrdiff_t ldb, double* x,
                                      std::ptrdiff_t ldx, int k, const Termination& term);

  [[nodiscard]] const NestedConfig& config() const { return cfg_; }
  [[nodiscard]] index_t size() const { return a_->size(); }

  /// Innermost Richardson weights (empty if the configuration has none) —
  /// exposed for the Section 6.3 experiments and tests.
  [[nodiscard]] std::vector<float> richardson_weights() const;

  /// Reset adaptive state (Richardson weights/counters) between systems.
  void reset_state();

 private:
  template <class VT>
  Preconditioner<VT>* build_level(std::size_t d);

  std::shared_ptr<MultiPrecMatrix> a_;
  std::shared_ptr<PrimaryPrecond> m_;
  NestedConfig cfg_;
  kern::Kernels kx_;               ///< outer-loop kernels on the build backend
  SolverWorkspace* ws_ = nullptr;  ///< external workspace (null → levels own theirs)
  std::string ws_prefix_;          ///< key prefix isolating this tuple in ws_

  // Ownership of all typed level objects; raw pointers below reference these.
  std::vector<std::shared_ptr<void>> owned_;
  FgmresSolver<double>* outer_ = nullptr;
  Operator<double>* outer_op_ = nullptr;
  // Richardson levels (any precision) for weight inspection / reset.
  std::vector<std::function<std::vector<float>()>> weight_probes_;
  std::vector<std::function<void()>> state_resets_;
};

/// Validates a NestedConfig (throws nk::SpecError, a std::invalid_argument
/// subclass, with a message).
void validate(const NestedConfig& cfg);

/// "(F^100, F^8, F^4, R^2, M)"-style rendering of a configuration.
std::string tuple_notation(const NestedConfig& cfg);

}  // namespace nk
