// Memory-access cost model of Section 4.1 (Equations (1)-(3)).
//
// The model counts memory accesses per matrix row (per n) of a
// preconditioned solver over one invocation of m iterations:
//
//   O(F^m, M)  = cA·m + cM·m + (5/2)·m²                        (1)
//   O(R^m, M)  = cA·(m−1) + cM·m + 4·(m−1)                     (1)
//   O(F^m̄,F^m̿,M) = cA·m̄ + O(F^m̿,M)·m̄ + (5/2)·m̄²             (2)
//   O(F^m̄,R^m̿,M) = cA·m̄ + O(R^m̿,M)·m̄ + (5/2)·m̄²             (3)
//
// with cA, cM the per-row access constants of A and M (≈ 1.5× nnz/row for
// fp64 values + 32-bit indices).  The model guides where to split FGMRES
// (Assumption (i)) and where to replace an inner FGMRES by Richardson
// (Assumption (ii)); the nesting advisor below automates the paper's
// reasoning ("m̄ = 10 results in the least amount, though 10 is not a
// divisor of 64").
#pragma once

#include <string>
#include <vector>

#include "base/half.hpp"

namespace nk {

/// Per-row access constant of a CSR matrix: nnz/row values at `bytes_value`
/// bytes plus nnz/row 32-bit indices, measured in 8-byte (fp64-equivalent)
/// units — e.g. 30 nnz/row in fp64 gives cA = 30·(8+4)/8 = 45, the paper's
/// example value.
double access_constant(double nnz_per_row, std::size_t bytes_value);

/// Equation (1), FGMRES: cA·m + cM·m + 2.5·m².
double cost_fgmres(double ca, double cm, int m);

/// Equation (1), Richardson (zero initial guess): cA·(m−1) + cM·m + 4·(m−1).
double cost_richardson(double ca, double cm, int m);

/// Equation (2): two-level nested FGMRES with inner dimension m_inner.
/// m_inner may be fractional: the paper's analysis fixes the TOTAL number
/// of primary applications m = m̄·m̿ and allows non-divisor splits ("m̄ = 10
/// results in the least amount, though 10 is not a divisor of 64").
double cost_nested_ff(double ca, double cm, int m_outer, double m_inner);

/// Equation (3): FGMRES over Richardson.
double cost_nested_fr(double ca, double cm, int m_outer, double m_inner);

/// Generic nested cost: levels from outermost to innermost; the last level
/// applies the primary preconditioner.  kind 'F' or 'R' per level.
struct LevelCost {
  char kind = 'F';  ///< 'F' = FGMRES, 'R' = Richardson
  int m = 1;
};
double cost_nested(double ca, double cm, const std::vector<LevelCost>& levels);

/// Result of the nesting advisor for a fixed total preconditioner budget m.
struct SplitAdvice {
  bool split = false;      ///< whether any nesting beats the flat solver
  int m_outer = 0;         ///< advised outer dimension m̄
  int m_inner = 0;         ///< advised inner count m̿ (= ceil(m/m̄))
  char inner_kind = 'F';   ///< advised inner solver type
  double flat_cost = 0.0;  ///< O(F^m, M)
  double best_cost = 0.0;  ///< cost of the advised configuration
};

/// Search all m̄ ∈ [2, m/2] for the cheapest (F^m̄, S^m̿, M) with
/// m̄·m̿ ≥ m; Richardson is considered for m̿ < `richardson_limit`
/// (Assumption (ii): small inner counts only).
SplitAdvice advise_split(double ca, double cm, int m, int richardson_limit = 5);

/// Human-readable advisor trace for bench_cost_model.
std::string advice_summary(const SplitAdvice& a);

}  // namespace nk
