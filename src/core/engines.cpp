// Built-in solver engines and their registry entries.
//
// Each engine is the orchestration that used to live in a run_* free
// function (core/runner.cpp before the descriptor layer), bound to the
// uniform SolverEngine interface: construct cheaply from a SolverSpec,
// defer per-solve construction (typed apply handles, operators, Krylov
// buffers) into solve()/solve_many(), and fill the complete SolveResult
// (timing, invocation counters, true fp64 residual) exactly as the legacy
// entry points did — the conformance baseline pins that behavior.
#include <algorithm>
#include <cmath>
#include <limits>

#include "backend/kernels.hpp"
#include "base/backend.hpp"
#include "base/timer.hpp"
#include "core/f3r.hpp"
#include "core/registry.hpp"
#include "core/tune/tuner.hpp"
#include "core/variants.hpp"
#include "krylov/bicgstab.hpp"
#include "krylov/cg.hpp"
#include "krylov/fgmres.hpp"
#include "precond/ainv.hpp"
#include "precond/block_jacobi_ic0.hpp"
#include "precond/block_jacobi_ilu0.hpp"
#include "precond/jacobi.hpp"
#include "precond/neumann.hpp"
#include "precond/ssor.hpp"

namespace nk {

namespace {

/// Finalize a SolveResult with timing + invocation-counter deltas.
template <class SolveFn>
SolveResult timed_solve(PrimaryPrecond& m, const std::string& name, SolveFn&& fn) {
  SolveResult res;
  const std::uint64_t calls0 = m.invocations();
  WallTimer t;
  res = fn();
  res.seconds = t.seconds();
  res.solver = name;
  res.precond_invocations = m.invocations() - calls0;
  return res;
}

/// The precision axis as M's storage precision: an explicit '@prec' on the
/// precond token wins, else the solver token's axis (the paper's "fp16-CG"
/// = fp64 CG with an fp16-stored preconditioner).
Prec eff_storage(const SolverSpec& s) { return s.precond.storage.value_or(s.prec); }

/// Backend the engine's pipeline was built for: the workspace carries it
/// (Session resolves spec > NKRYLOV_BACKEND > host before minting); a null
/// workspace (direct factory use in tests) means the host default.
Backend ws_backend(const SolverWorkspace* ws) {
  return ws != nullptr ? ws->backend() : Backend::kHost;
}

/// Shared tail of the batched flat-solver paths: per-column true
/// residuals, batch-total counters, and naming.
void finalize_many(std::vector<SolveResult>& res, const PreparedProblem& p,
                   std::span<const double> B, std::span<const double> X,
                   const std::string& name, double rtol, double seconds,
                   std::uint64_t m_calls, std::uint64_t spmvs, Backend be) {
  const std::size_t n = p.b.size();
  const kern::Kernels kx(be);
  for (std::size_t c = 0; c < res.size(); ++c) {
    res[c].solver = name;
    res[c].seconds = seconds;
    res[c].precond_invocations = m_calls;
    res[c].spmv_count = spmvs;
    res[c].final_relres =
        kx.relative_residual(p.a->csr_fp64(), X.subspan(c * n, n), B.subspan(c * n, n));
    // Demote a recurrence-claimed convergence the true fp64 residual
    // disagrees with: the taxonomy's kDiverged ("garbage labeled
    // converged" is exactly what a service must never hand back).
    if (res[c].converged && !(res[c].final_relres < rtol * 1.5))
      res[c].fail(SolveStatus::kDiverged, "true-residual");
  }
}

// ------------------------------------------------------------------ flat

/// CG / BiCGStab over fp64 vectors with a `storage`-precision M handle;
/// batched solve_many with active-set compaction and ragged waves.
template <class Solver>
class FlatKrylovEngine final : public SolverEngine {
 public:
  FlatKrylovEngine(SolverSpec spec, const PreparedProblem& p,
                   std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws,
                   std::string label, bool halve_iters)
      : spec_(std::move(spec)), p_(&p), m_(std::move(m)), ws_(ws),
        label_(std::move(label)), halve_iters_(halve_iters) {}

  [[nodiscard]] std::string name() const override {
    return std::string(prec_name(eff_storage(spec_))) + "-" + label_;
  }

  SolveResult solve(std::span<const double> b, std::span<double> x) override {
    const Backend be = ws_backend(ws_);
    auto handle = m_->make_apply<double>(eff_storage(spec_));
    handle->set_backend(be);
    // Honor the prepared problem's storage format (CSR or SELL).
    auto op = p_->a->make_operator<double>(Prec::FP64, be);
    Solver solver(*op, *handle, config(), ws_);
    auto res = timed_solve(*m_, name(), [&] { return solver.solve(b, x); });
    res.final_relres = kern::Kernels(be).relative_residual(
        p_->a->csr_fp64(), std::span<const double>(x.data(), x.size()), b);
    if (res.converged && !(res.final_relres < spec_.rtol * 1.5))
      res.fail(SolveStatus::kDiverged, "true-residual");
    res.spmv_count = op->spmv_count();
    return res;
  }

  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k) override {
    const Backend be = ws_backend(ws_);
    auto handle = m_->make_apply<double>(eff_storage(spec_));
    handle->set_backend(be);
    auto op = p_->a->make_operator<double>(Prec::FP64, be);
    Solver solver(*op, *handle, config(), ws_);
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(p_->b.size());
    const std::uint64_t calls0 = m_->invocations();
    WallTimer t;
    auto res = solver.solve_many(B.data(), n, X.data(), n, k, spec_.wave);
    finalize_many(res, *p_, B, X, name(), spec_.rtol, t.seconds(),
                  m_->invocations() - calls0, op->spmv_count(), be);
    return res;
  }

 private:
  [[nodiscard]] typename Solver::Config config() const {
    typename Solver::Config cfg;
    cfg.rtol = spec_.rtol;
    // BiCGStab makes 2 preconditioner calls per iteration: half the cap.
    cfg.max_iters = halve_iters_ ? spec_.max_iters / 2 : spec_.max_iters;
    cfg.record_history = spec_.record_history;
    cfg.compact = spec_.compact;
    cfg.layout = spec_.layout;  // unset → the workspace's panel_layout()
    cfg.stagnate_window = spec_.stagnate_window;
    return cfg;
  }

  SolverSpec spec_;
  const PreparedProblem* p_;
  std::shared_ptr<PrimaryPrecond> m_;
  SolverWorkspace* ws_;
  std::string label_;
  bool halve_iters_;
};

using CgEngine = FlatKrylovEngine<CgSolver<double>>;
using BiCgStabEngine = FlatKrylovEngine<BiCgStabSolver<double>>;

// ---------------------------------------------------------------- fgmres

/// fp64 restarted FGMRES(m) with a `storage`-precision M handle — the
/// paper's FGMRES(64) baseline.
class FgmresEngine final : public SolverEngine {
 public:
  FgmresEngine(SolverSpec spec, const PreparedProblem& p,
               std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws)
      : spec_(std::move(spec)), p_(&p), m_(std::move(m)), ws_(ws) {}

  [[nodiscard]] std::string name() const override {
    return std::string(prec_name(eff_storage(spec_))) + "-FGMRES(" +
           std::to_string(spec_.m) + ")";
  }

  SolveResult solve(std::span<const double> b, std::span<double> x) override {
    const Backend be = ws_backend(ws_);
    const kern::Kernels kx(be);
    auto handle = m_->make_apply<double>(eff_storage(spec_));
    handle->set_backend(be);
    auto op_owned = p_->a->make_operator<double>(Prec::FP64, be);
    Operator<double>& op = *op_owned;
    FgmresSolver<double> solver(op, *handle, FgmresSolver<double>::Config{spec_.m}, ws_);

    auto res = timed_solve(*m_, name(), [&] {
      SolveResult r;
      const double bnorm = static_cast<double>(kx.nrm2(b));
      const double bref = bnorm > 0.0 ? bnorm : 1.0;
      const double target = spec_.rtol * bref;
      std::vector<double> estimates;
      solver.set_iteration_log(&estimates);
      double stag_best = std::numeric_limits<double>::infinity();
      int stall = 0;
      bool x_nonzero = false;
      while (r.iterations < spec_.max_iters) {
        const auto stats = solver.run(b, x, target, x_nonzero);
        r.iterations += stats.iters;
        x_nonzero = true;
        const double relres = kx.relative_residual(
            p_->a->csr_fp64(), std::span<const double>(x.data(), x.size()), b);
        r.final_relres = relres;
        if (relres < spec_.rtol) {
          r.mark_converged();
          break;
        }
        if (!std::isfinite(relres)) {
          r.fail(SolveStatus::kNonFinite, stats.non_finite ? "hj1" : "relres");
          break;
        }
        if (stats.iters == 0) {
          // The cycle could not even start (beta zero/non-finite at r0).
          r.fail(stats.non_finite ? SolveStatus::kNonFinite : SolveStatus::kBreakdown,
                 "beta");
          break;
        }
        // Attribute restart-budget exhaustion without altering the restart
        // control flow (breakdown cycles restart — conformance-pinned).
        if (stats.non_finite) {
          r.fail(SolveStatus::kNonFinite, "hj1");
        } else if (stats.breakdown) {
          r.fail(SolveStatus::kBreakdown, "hj1");
        } else {
          r.fail(SolveStatus::kMaxIters);
        }
        if (spec_.stagnate_window > 0) {
          if (relres < 0.99 * stag_best) {
            stag_best = relres;
            stall = 0;
          } else if (++stall >= spec_.stagnate_window) {
            r.fail(SolveStatus::kStagnated, "relres");
            break;
          }
        }
        ++r.restarts;
      }
      solver.set_iteration_log(nullptr);
      if (spec_.record_history)
        for (double e : estimates) r.history.push_back(e / bref);
      return r;
    });
    res.spmv_count = op.spmv_count();
    return res;
  }

  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k) override {
    // Per-column restart targets differ (rtol·‖b_c‖), so the restart loop
    // runs the columns sequentially; setup (matrix copies, M handles) is
    // amortized by the shared problem/workspace.
    const std::size_t n = p_->b.size();
    std::vector<SolveResult> res;
    res.reserve(static_cast<std::size_t>(std::max(k, 0)));
    for (int c = 0; c < k; ++c)
      res.push_back(solve(B.subspan(static_cast<std::size_t>(c) * n, n),
                          X.subspan(static_cast<std::size_t>(c) * n, n)));
    return res;
  }

 private:
  SolverSpec spec_;
  const PreparedProblem* p_;
  std::shared_ptr<PrimaryPrecond> m_;
  SolverWorkspace* ws_;
};

// -------------------------------------------------------------- ir-gmres

/// Conventional mixed-precision baseline: fp64 iterative refinement
/// (Richardson) outer with a low-precision GMRES(m) inner solver (Anzt et
/// al. 2011; Lindquist et al. 2021).  The spec's precision axis is the
/// inner working precision (matrix, vectors, and M all at that precision).
class IrGmresEngine final : public SolverEngine {
 public:
  IrGmresEngine(SolverSpec spec, const PreparedProblem& p,
                std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws)
      : spec_(std::move(spec)), p_(&p), m_(std::move(m)), ws_(ws) {}

  [[nodiscard]] std::string name() const override {
    return std::string(prec_name(spec_.prec)) + "-IR-GMRES(" + std::to_string(spec_.m) +
           ")";
  }

  SolveResult solve(std::span<const double> b, std::span<double> x) override {
    return timed_solve(*m_, name(), [&] {
      switch (spec_.prec) {
        case Prec::FP64: return impl<double>(b, x);
        case Prec::FP32: return impl<float>(b, x);
        case Prec::FP16: return impl<half>(b, x);
      }
      throw std::logic_error("ir-gmres: bad precision");
    });
  }

  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k) override {
    const std::size_t n = p_->b.size();
    std::vector<SolveResult> res;
    res.reserve(static_cast<std::size_t>(std::max(k, 0)));
    for (int c = 0; c < k; ++c)
      res.push_back(solve(B.subspan(static_cast<std::size_t>(c) * n, n),
                          X.subspan(static_cast<std::size_t>(c) * n, n)));
    return res;
  }

 private:
  template <class VT>
  SolveResult impl(std::span<const double> b, std::span<double> x) {
    const std::size_t n = b.size();
    const Backend be = ws_backend(ws_);
    const kern::Kernels kx(be);
    // The matrix is stored at the inner working precision; only M's
    // storage honors a precond-token override.
    auto op = p_->a->make_operator<VT>(spec_.prec, be);
    auto handle = m_->make_apply<VT>(eff_storage(spec_));
    handle->set_backend(be);
    FgmresSolver<VT> inner(*op, *handle, typename FgmresSolver<VT>::Config{spec_.m}, ws_);
    CsrOperator<double, double> op64(p_->a->csr_fp64(), be);

    SolveResult r;
    std::vector<double> rd(n);
    std::vector<VT> rl(n), cl(n);
    const double bnorm = static_cast<double>(kx.nrm2(b));
    const double bref = bnorm > 0.0 ? bnorm : 1.0;
    const int max_outer = std::max(1, spec_.max_iters / spec_.m);
    double stag_best = std::numeric_limits<double>::infinity();
    int stall = 0;
    for (int outer = 0; outer < max_outer; ++outer) {
      op64.residual(b, std::span<const double>(x.data(), n), std::span<double>(rd));
      const double relres =
          static_cast<double>(kx.nrm2(std::span<const double>(rd))) / bref;
      r.final_relres = relres;
      if (spec_.record_history) r.history.push_back(relres);
      if (relres < spec_.rtol) {
        r.mark_converged();
        break;
      }
      if (!std::isfinite(relres)) {
        r.fail(SolveStatus::kNonFinite, "relres");
        break;
      }
      if (spec_.stagnate_window > 0) {
        if (relres < 0.99 * stag_best) {
          stag_best = relres;
          stall = 0;
        } else if (++stall >= spec_.stagnate_window) {
          r.fail(SolveStatus::kStagnated, "relres");
          break;
        }
      }
      // Low-precision correction solve A c ≈ r.  The residual is normalized
      // before the downcast — late-stage residuals (~1e-8·‖b‖) would land in
      // fp16's subnormal range and stall the refinement otherwise.
      const double rnorm = static_cast<double>(kx.nrm2(std::span<const double>(rd)));
      if (rnorm > 0.0) kx.scal(1.0 / rnorm, std::span<double>(rd));
      kx.convert(std::span<const double>(rd), std::span<VT>(rl));
      inner.apply(std::span<const VT>(rl), std::span<VT>(cl));
      kx.axpy(rnorm, std::span<const VT>(cl), std::span<double>(x.data(), n));
      r.iterations = outer + 1;
    }
    r.spmv_count = op->spmv_count() + op64.spmv_count();
    return r;
  }

  SolverSpec spec_;
  const PreparedProblem* p_;
  std::shared_ptr<PrimaryPrecond> m_;
  SolverWorkspace* ws_;
};

// ---------------------------------------------------------------- nested

/// Any nested tuple (F3R, the Table 4 variants, custom configurations).
class NestedEngine final : public SolverEngine {
 public:
  NestedEngine(const PreparedProblem& p, std::shared_ptr<PrimaryPrecond> m,
               NestedConfig cfg, Termination term, SolverWorkspace* ws)
      : p_(&p), m_(std::move(m)), cfg_(std::move(cfg)), term_(term), ws_(ws) {}

  [[nodiscard]] std::string name() const override { return cfg_.name; }

  SolveResult solve(std::span<const double> b, std::span<double> x) override {
    NestedSolver solver(p_->a, m_, cfg_, ws_);
    const std::uint64_t calls0 = m_->invocations();
    SolveResult res = solver.solve(b, x, term_);
    res.precond_invocations = m_->invocations() - calls0;
    return res;
  }

  std::vector<SolveResult> solve_many(std::span<const double> B, std::span<double> X,
                                      int k) override {
    NestedSolver solver(p_->a, m_, cfg_, ws_);
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(p_->b.size());
    const std::uint64_t calls0 = m_->invocations();
    auto res = solver.solve_many(B.data(), n, X.data(), n, k, term_);
    const std::uint64_t calls = m_->invocations() - calls0;
    for (auto& r : res) r.precond_invocations = calls;
    return res;
  }

 private:
  const PreparedProblem* p_;
  std::shared_ptr<PrimaryPrecond> m_;
  NestedConfig cfg_;
  Termination term_;
  SolverWorkspace* ws_;
};

Termination termination_of(const SolverSpec& spec) {
  Termination t;
  t.rtol = spec.rtol;
  t.max_restarts = spec.max_restarts;
  t.record_history = spec.record_history;
  t.stagnate_window = spec.stagnate_window;
  return t;
}

// ------------------------------------------------- identity ("none") M

/// Counting identity handle: un-preconditioned solves still report
/// M-invocations so the Table 3 accounting stays uniform.
template <class VT>
class CountingIdentity final : public Preconditioner<VT> {
 public:
  CountingIdentity(index_t n, std::shared_ptr<InvocationCounter> c)
      : n_(n), counter_(std::move(c)) {}
  void apply(std::span<const VT> r, std::span<VT> z) override {
    this->kern_table().copy(r, z);
    ++counter_->count;
  }
  [[nodiscard]] index_t size() const override { return n_; }

 private:
  index_t n_;
  std::shared_ptr<InvocationCounter> counter_;
};

class IdentityPrimary final : public PrimaryPrecond {
 public:
  explicit IdentityPrimary(index_t n) : n_(n) {}
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] index_t size() const override { return n_; }
  std::unique_ptr<Preconditioner<double>> make_apply_fp64(Prec) override {
    return std::make_unique<CountingIdentity<double>>(n_, counter_);
  }
  std::unique_ptr<Preconditioner<float>> make_apply_fp32(Prec) override {
    return std::make_unique<CountingIdentity<float>>(n_, counter_);
  }
  std::unique_ptr<Preconditioner<half>> make_apply_fp16(Prec) override {
    return std::make_unique<CountingIdentity<half>>(n_, counter_);
  }

 private:
  index_t n_;
};

/// Block-Jacobi ILU(0)/IC(0): the paper's CPU-node primary, IC(0) on
/// symmetric problems (make_primary's long-standing selection rule).
std::shared_ptr<PrimaryPrecond> make_bj(const PrecondSpec& spec, const PreparedProblem& p,
                                        int force) {
  const CsrMatrix<double>& a = p.a->csr_fp64();
  const bool ic = force == 0 ? p.symmetric : force > 0;
  if (ic) {
    BlockJacobiIc0::Config c;
    c.nblocks = spec.nblocks;
    c.alpha = p.alpha_ilu;
    return std::make_shared<BlockJacobiIc0>(a, c);
  }
  BlockJacobiIlu0::Config c;
  c.nblocks = spec.nblocks;
  c.alpha = p.alpha_ilu;
  return std::make_shared<BlockJacobiIlu0>(a, c);
}

}  // namespace

namespace detail {

std::unique_ptr<SolverEngine> make_nested_engine(const PreparedProblem& p,
                                                 std::shared_ptr<PrimaryPrecond> m,
                                                 NestedConfig cfg, Termination term,
                                                 SolverWorkspace* ws) {
  return std::make_unique<NestedEngine>(p, std::move(m), std::move(cfg), term, ws);
}

void register_builtin_kinds(Registry& r) {
  // --- primary preconditioners (the conformance trio first: the sweep's
  // cell ordering follows registration order) ---
  r.add_precond({"jacobi", "diagonal scaling", true},
                [](const PrecondSpec&, const PreparedProblem& p) {
                  return std::make_shared<JacobiPrecond>(p.a->csr_fp64());
                });
  r.add_precond({"bj", "block-Jacobi ILU(0), IC(0) when symmetric (alpha_ILU)", true},
                [](const PrecondSpec& s, const PreparedProblem& p) {
                  return make_bj(s, p, 0);
                });
  r.add_precond({"sd-ainv", "scaled-diagonal AINV (alpha_AINV, GPU node)", true},
                [](const PrecondSpec&, const PreparedProblem& p) {
                  SdAinv::Config c;
                  c.alpha = p.alpha_ainv;
                  c.symmetric = p.symmetric;
                  return std::make_shared<SdAinv>(p.a->csr_fp64(), c);
                });
  r.add_precond({"bj-ilu0", "block-Jacobi ILU(0) regardless of symmetry"},
                [](const PrecondSpec& s, const PreparedProblem& p) {
                  return make_bj(s, p, -1);
                });
  r.add_precond({"bj-ic0", "block-Jacobi IC(0) (requires symmetry)"},
                [](const PrecondSpec& s, const PreparedProblem& p) {
                  return make_bj(s, p, +1);
                });
  r.add_precond({"ssor", "block SSOR(omega)"},
                [](const PrecondSpec& s, const PreparedProblem& p) {
                  return std::make_shared<SsorPrecond>(
                      p.a->csr_fp64(), SsorPrecond::Config{s.nblocks, s.omega});
                });
  r.add_precond({"neumann", "Neumann-series approximate inverse (degree)"},
                [](const PrecondSpec& s, const PreparedProblem& p) {
                  return std::make_shared<NeumannPrecond>(p.a->csr_fp64(),
                                                          NeumannPrecond::Config{s.degree});
                });
  r.add_precond({"none", "identity (un-preconditioned)"},
                [](const PrecondSpec&, const PreparedProblem& p) {
                  return std::make_shared<IdentityPrimary>(p.a->size());
                });

  // --- flat Krylov solvers ---
  r.add_solver({"cg", "fp64 preconditioned CG (SPD)", false, 0, true, false},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 return std::make_unique<CgEngine>(s, p, std::move(m), ws, "CG", false);
               });
  r.add_solver({"bicgstab", "fp64 preconditioned BiCGStab", false, 0, true, false},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 return std::make_unique<BiCgStabEngine>(s, p, std::move(m), ws,
                                                         "BiCGStab", true);
               });
  r.add_solver({"krylov", "CG on symmetric problems, BiCGStab otherwise", false, 0, true,
                true},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m,
                  SolverWorkspace* ws) -> std::unique_ptr<SolverEngine> {
                 if (p.symmetric)
                   return std::make_unique<CgEngine>(s, p, std::move(m), ws, "CG", false);
                 return std::make_unique<BiCgStabEngine>(s, p, std::move(m), ws,
                                                         "BiCGStab", true);
               });
  // (make_solver resolves default_m before calling the factories, so the
  // specs these engines see always carry a concrete m.)
  r.add_solver({"fgmres", "fp64 restarted FGMRES(m)", true, 64, true, true},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 return std::make_unique<FgmresEngine>(s, p, std::move(m), ws);
               });
  r.add_solver({"ir-gmres", "fp64 iterative refinement + low-precision GMRES(m) inner",
                true, 8, true, false},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 return std::make_unique<IrGmresEngine>(s, p, std::move(m), ws);
               });

  // --- nested tuples ---
  r.add_solver({"f3r", "the paper's F3R at the given lowest precision", false, 0, true,
                true},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 NestedConfig cfg = f3r_config(s.prec);
                 if (s.precond.storage.has_value()) cfg.precond_storage = *s.precond.storage;
                 return std::make_unique<NestedEngine>(p, std::move(m), std::move(cfg),
                                                       termination_of(s), ws);
               });
  // Table 4 ablation variants: registered aliases with fixed precisions
  // (variant_names() is the canonical-case spelling, keys are lower case).
  for (const std::string& vname : variant_names()) {
    std::string key = vname;
    for (char& c : key) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    r.add_solver({key, "Table 4 nesting-depth variant " + vname, false, 0, false, false},
                 [vname](const SolverSpec& s, const PreparedProblem& p,
                         std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                   NestedConfig cfg = variant_config(vname);
                   if (s.precond.storage.has_value())
                     cfg.precond_storage = *s.precond.storage;
                   return std::make_unique<NestedEngine>(p, std::move(m), std::move(cfg),
                                                         termination_of(s), ws);
                 });
  }

  // --- the autotuner meta-kind (core/tune/) ---
  // takes_prec=true so "auto@fp16" parses: a non-fp64 '@prec' PINS the
  // shortlist's precision axis rather than naming a fixed storage choice
  // (fp64 itself cannot be pinned — it reads as "no pin").  Not in the
  // conformance catalog: its cell would be whatever kind it delegates to.
  r.add_solver({"auto", "autotuned choice: cost-model shortlist + probe solves + perf-DB",
                false, 0, true, false},
               [](const SolverSpec& s, const PreparedProblem& p,
                  std::shared_ptr<PrimaryPrecond> m, SolverWorkspace* ws) {
                 return tune::make_auto_engine(s, p, std::move(m), ws);
               });
}

}  // namespace detail

}  // namespace nk
