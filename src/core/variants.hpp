// The Section 6.2 ablation solvers (Table 4): nesting-depth variants of
// F3R used to examine Assumptions (i) and (ii).
//
//   F2       = (F^100, F^64, M)          inner F64: A fp32, vec fp32, M fp16
//   fp16-F2  = (F^100, F^64, M)          inner F64: A fp16, vec fp16, M fp16
//   F3       = (F^100, F^8, F^8, M)      fp32 mid, inner F8: A fp16 vec fp32, M fp16
//   fp16-F3  = (F^100, F^8, F^8, M)      fp32 mid, inner F8: A fp16 vec fp16, M fp16
//   F4       = (F^100, F^8, F^4, F^2, M) fp16-F3R with the innermost
//                                        Richardson replaced by FGMRES
#pragma once

#include <string>
#include <vector>

#include "core/f3r.hpp"
#include "core/nested_builder.hpp"

namespace nk {

/// Table 4 variant by name: "F2", "fp16-F2", "F3", "fp16-F3", "F4".
/// Throws std::invalid_argument on unknown names.  Every variant is also a
/// registered solver kind (core/registry.hpp), so "F2" parses as a
/// SolverSpec and builds through nk::Session; CLI surfaces should prefer
/// that path (it reports unknown names with the registered-kind list).
NestedConfig variant_config(const std::string& name);

/// All Table 4 variant names in paper order.
std::vector<std::string> variant_names();

}  // namespace nk
