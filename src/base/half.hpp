// nk::half — the half-precision (binary16) scalar type used throughout the
// library, plus precision traits shared by all mixed-precision kernels.
//
// The paper ("A Nested Krylov Method Using Half-Precision Arithmetic")
// stores matrix values, vectors, and preconditioner values in fp16 at the
// innermost nesting levels and prescribes that "higher-precision
// instructions are used when the inputs differ in precision".  We realize
// that rule with the compiler's `_Float16`: C++'s usual arithmetic
// conversions promote `_Float16` to `float`/`double` whenever the other
// operand is wider, and pure `_Float16` expressions are rounded to binary16
// after every operation (GCC emulates through fp32 with correct rounding on
// targets without a native fp16 ALU, and uses F16C for conversions).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#if defined(__F16C__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace nk {

#if defined(__FLT16_MAX__)
/// IEEE-754 binary16 scalar.  Arithmetic follows the usual C++ conversion
/// rules: half⊕half rounds to half, half⊕float computes in float.
using half = _Float16;
#else
#error "nkrylov requires a compiler with _Float16 support (GCC >= 12 / Clang >= 15 on x86-64)"
#endif

/// The three working precisions of the paper (Table 1).
enum class Prec : std::uint8_t { FP64 = 0, FP32 = 1, FP16 = 2 };

/// Human-readable name used in bench tables ("fp64", "fp32", "fp16").
const char* prec_name(Prec p) noexcept;

/// Parse "fp64"/"fp32"/"fp16" (also accepts "double"/"single"/"half").
/// Throws std::invalid_argument on anything else.
Prec parse_prec(const std::string& s);

/// Bytes occupied by one scalar of precision `p`.
constexpr std::size_t prec_bytes(Prec p) noexcept {
  return p == Prec::FP64 ? 8u : p == Prec::FP32 ? 4u : 2u;
}

template <class T>
inline constexpr bool is_fp_v =
    std::is_same_v<T, double> || std::is_same_v<T, float> || std::is_same_v<T, half>;

/// Compile-time Prec tag of a scalar type.
template <class T>
constexpr Prec prec_of() noexcept {
  static_assert(is_fp_v<T>, "nkrylov scalar types are double, float, nk::half");
  if constexpr (std::is_same_v<T, double>) return Prec::FP64;
  else if constexpr (std::is_same_v<T, float>) return Prec::FP32;
  else return Prec::FP16;
}

/// The wider of two scalar types; the precision mixed-input kernels compute in.
template <class A, class B>
using promote_t = std::conditional_t<
    std::is_same_v<A, double> || std::is_same_v<B, double>, double,
    std::conditional_t<std::is_same_v<A, float> || std::is_same_v<B, float>, float, half>>;

/// Accumulator type for reductions over T.  Dot products and norms over fp16
/// data accumulate in fp32 (the paper computes the Richardson weight ω' in
/// fp32; all reduction kernels live in the fp32 FGMRES levels anyway).
template <class T>
using acc_t = std::conditional_t<std::is_same_v<T, half>, float, T>;

/// numeric_limits-style constants for the three precisions, usable in
/// templated kernels without relying on libstdc++ C++23 extensions.
template <class T>
struct fp_limits;

template <>
struct fp_limits<double> {
  static constexpr double eps = std::numeric_limits<double>::epsilon();
  static constexpr double max = std::numeric_limits<double>::max();
  static constexpr double min_normal = std::numeric_limits<double>::min();
  static constexpr int digits = 53;
};
template <>
struct fp_limits<float> {
  static constexpr float eps = std::numeric_limits<float>::epsilon();
  static constexpr float max = std::numeric_limits<float>::max();
  static constexpr float min_normal = std::numeric_limits<float>::min();
  static constexpr int digits = 24;
};
template <>
struct fp_limits<half> {
  static constexpr float eps = 9.765625e-04f;        // 2^-10
  static constexpr float max = 65504.0f;             // largest finite binary16
  static constexpr float min_normal = 6.103515625e-05f;  // 2^-14
  static constexpr int digits = 11;
};

/// True if `x` (evaluated in fp32) would overflow when stored as binary16.
inline bool overflows_half(float x) noexcept {
  return x > fp_limits<half>::max || x < -fp_limits<half>::max;
}

/// Round a float to the nearest binary16 value and return it as float.
/// Useful in tests to predict storage error of fp16 matrices.
inline float round_to_half(float x) noexcept { return static_cast<float>(static_cast<half>(x)); }

/// Unit roundoff of precision `p` (as double, for cost/accuracy models).
double unit_roundoff(Prec p) noexcept;

// ---------------------------------------------------------------------------
// Bulk fp16 ⇄ fp32 conversion.
//
// GCC 12's vectorizer has no vector type for _Float16 → float statements
// ("missed: no vectype"), so a plain conversion loop compiles to scalar
// vcvtsh2ss whose destination-register merge serializes the whole loop.
// These helpers issue the 16-wide AVX-512F forms when compiled for such a
// target, else the 8-wide F16C forms (vcvtph2ps / vcvtps2ph); without
// either they degrade to the scalar loop.  Round-to-nearest-even on both
// directions at every width — identical results to the scalar casts, so
// width selection is purely a speed choice and needs no dispatch gate.
// ---------------------------------------------------------------------------

/// dst[i] = float(src[i]) for i < n.
inline void half_to_float_n(const half* src, float* dst, std::ptrdiff_t n) {
  std::ptrdiff_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
#endif
#if defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

/// dst[i] = half(src[i]) for i < n (round to nearest even).
inline void float_to_half_n(const float* src, half* dst, std::ptrdiff_t n) {
  std::ptrdiff_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(src + i), _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
#endif
#if defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i), _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<half>(src[i]);
}

/// x[i] = float(half(x[i])) in place — the binary16 rounding step mixed
/// kernels apply between fused updates.
inline void round_half_n(float* x, std::ptrdiff_t n) {
  std::ptrdiff_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT);
    _mm512_storeu_ps(x + i, _mm512_cvtph_ps(h));
  }
#endif
#if defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_ps(x + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) x[i] = static_cast<float>(static_cast<half>(x[i]));
}

}  // namespace nk
