// Panel layouts for batched multi-RHS storage.
//
// A batched solver advances k right-hand sides through panels of k columns
// of length n.  Two layouts are supported:
//
//  * kRowMajor — column c is contiguous at p + c·ld (ld ≥ n).  The seed
//    layout: single-column spans are free, SpMV-style kernels stream each
//    column unit-stride, but multi-column kernels touch k strided streams.
//
//  * kColMajor — element (i, c) lives at p[i·ld + c] (ld ≥ k, the row
//    stride).  The transposed ("interleaved") layout: the live columns of a
//    compacted survivor panel sit next to each other in memory, so
//    column-innermost kernels (dot_cols / axpy_cols / SpMM row sweeps /
//    batched triangular solves) stream unit-stride over exactly the active
//    set, at any compaction width.
//
// Kernels taking a PanelLayout preserve each column's operation order
// bit-for-bit across layouts — only the addressing changes — so a solver
// may switch layouts without changing its convergence trajectory.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace nk {

enum class PanelLayout : unsigned char {
  kRowMajor = 0,  ///< column c contiguous at p + c·ld (ld = column stride ≥ n)
  kColMajor = 1,  ///< element (i, c) at p[i·ld + c]   (ld = row stride ≥ k)
};

[[nodiscard]] constexpr const char* panel_layout_name(PanelLayout l) {
  return l == PanelLayout::kColMajor ? "colmajor" : "rowmajor";
}

[[nodiscard]] inline std::optional<PanelLayout> parse_panel_layout(std::string_view s) {
  if (s == "rowmajor") return PanelLayout::kRowMajor;
  if (s == "colmajor") return PanelLayout::kColMajor;
  return std::nullopt;
}

/// Address of element (i, c) of a panel with leading dimension `ld` under
/// layout L (compile-time variant — folds to one addressing mode).
template <PanelLayout L, class T>
[[nodiscard]] constexpr T* panel_at(T* p, std::ptrdiff_t ld, std::ptrdiff_t c,
                                    std::ptrdiff_t i) {
  if constexpr (L == PanelLayout::kColMajor) return p + i * ld + c;
  else return p + c * ld + i;
}

/// Runtime variant of panel_at.
template <class T>
[[nodiscard]] constexpr T* panel_at(T* p, std::ptrdiff_t ld, PanelLayout l,
                                    std::ptrdiff_t c, std::ptrdiff_t i) {
  return l == PanelLayout::kColMajor ? p + i * ld + c : p + c * ld + i;
}

/// Copy one column (length n) between panels of arbitrary layouts.  Exact
/// element copies — no arithmetic, safe for non-finite payloads.
template <class T>
void panel_copy_col(const T* src, std::ptrdiff_t lds, PanelLayout ls, std::ptrdiff_t cs,
                    T* dst, std::ptrdiff_t ldd, PanelLayout ld, std::ptrdiff_t cd,
                    std::ptrdiff_t n) {
  const T* s = panel_at(src, lds, ls, cs, 0);
  T* d = panel_at(dst, ldd, ld, cd, 0);
  const std::ptrdiff_t ss = ls == PanelLayout::kColMajor ? lds : 1;
  const std::ptrdiff_t ds = ld == PanelLayout::kColMajor ? ldd : 1;
  if (ss == 1 && ds == 1) {
    for (std::ptrdiff_t i = 0; i < n; ++i) d[i] = s[i];
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) d[i * ds] = s[i * ss];
  }
}

/// Copy a k-column panel (length n) between layouts.  Exact element copies;
/// the workhorse of the staging fallback operators use when they have no
/// native interleaved kernel.
template <class T>
void panel_copy(const T* src, std::ptrdiff_t lds, PanelLayout ls, T* dst,
                std::ptrdiff_t ldd, PanelLayout ld, int k, std::ptrdiff_t n) {
  if (ls == ld && lds == ldd) {
    // Same layout and stride: single dense copy of the covered region.
    for (int c = 0; c < k; ++c) panel_copy_col(src, lds, ls, c, dst, ldd, ld, c, n);
    return;
  }
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * n > 1 << 16)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    for (int c = 0; c < k; ++c)
      *panel_at(dst, ldd, ld, c, i) = *panel_at(src, lds, ls, c, i);
}

}  // namespace nk
