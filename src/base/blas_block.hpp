// Blocked multi-vector BLAS kernels — the fused Arnoldi hot path.
//
// Classical Gram-Schmidt against k basis vectors, written with blas1
// primitives, is k independent dot() calls followed by k independent
// axpy() calls: 2k parallel-region launches and 2k full passes over w.
// F3R nests three FGMRES levels, so that sequence executes millions of
// times per solve.  The kernels here do the same math in one pass:
//
//   dot_many   out[j] = V_jᵀ·w  for all j   — one sweep over V and w
//   axpy_many  w (±)= Σ_j h[j]·V_j          — one read-modify-write of w
//   scal_copy  dst = α·src                  — fuses normalize-then-copy
//
// V is a contiguous row-major block (vector j starts at v + j·ld), which
// is how FgmresSolver now stores its Arnoldi and preconditioned bases.
//
// Numerical contract: per output element these kernels perform bit-for-bit
// the same operation sequence as the blas1 loops they replace (at one
// thread for dot_many; at any thread count for axpy_many/scal_copy, whose
// chains are element-local).  In particular axpy_many rounds the running
// value to the vector precision after every term — exactly what k chained
// axpy() stores do — so fusing changes the schedule, never the math.
// Reductions over fp16 inputs accumulate in fp32 with the same four-way
// unrolling as blas::dot (see the false-dependency note there).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "base/blas1.hpp"
#include "base/half.hpp"
#include "base/panel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nk::blas {

namespace block_detail {

/// Cache tile (elements) for the i-dimension: w's tile stays in L1 while
/// the k basis rows stream past it.  Multiple of 4 so the fp16 four-way
/// accumulator grouping stays aligned with blas::dot's across tiles.
inline constexpr std::ptrdiff_t kTile = 1024;

/// Stack-scratch capacity in basis vectors: covers every FGMRES
/// configuration in the repo (outermost m = 100 → k ≤ 101) without heap
/// allocation; larger k falls back to a heap buffer.
inline constexpr int kMaxStackK = 128;

/// Register-blocked group core of dot_many's fp64/fp32 path: KG columns'
/// accumulator chains advance together through one sweep over [i0, i1).
/// Per column the i-order (and therefore the rounding sequence) is exactly
/// the single-chain loop's — grouping columns adds INSTRUCTION-level
/// parallelism without touching any column's math.  KG is a compile-time
/// constant so the inner loop fully unrolls into KG independent FMA chains
/// held in registers; the serial per-column chain this replaces was
/// latency-bound at one element per FMA latency (~7 GB/s where a single
/// dot streams 13 GB/s — the committed BENCH_kernels.json gap).
template <class TV, class TW, class W, int KG>
inline void dot_many_group(const TV* __restrict v, std::ptrdiff_t ld,
                           const TW* __restrict w, std::ptrdiff_t i0, std::ptrdiff_t i1,
                           W* __restrict acc) {
  W a[KG];
  for (int j = 0; j < KG; ++j) a[j] = acc[j];
  for (std::ptrdiff_t i = i0; i < i1; ++i) {
    const W wi = static_cast<W>(w[i]);
    for (int j = 0; j < KG; ++j) a[j] += static_cast<W>(v[j * ld + i]) * wi;
  }
  for (int j = 0; j < KG; ++j) acc[j] = a[j];
}

/// Sequential dot_many over the index range [i0, i1): accumulates into
/// acc[j] (general path) or acc4[4j..4j+3] (half path), preserving
/// blas::dot's per-vector operation order.  `i1 - i0` must be a multiple
/// of 4 on the half path (callers peel the remainder).
template <class TV, class TW, class W>
inline void dot_many_range(const TV* __restrict v, std::ptrdiff_t ld, int k,
                           const TW* __restrict w, std::ptrdiff_t i0, std::ptrdiff_t i1,
                           W* __restrict acc) {
  for (std::ptrdiff_t t0 = i0; t0 < i1; t0 += kTile) {
    const std::ptrdiff_t t1 = std::min(t0 + kTile, i1);
    if constexpr (sizeof(TV) == 2 || sizeof(TW) == 2) {
      // Convert fp16 operands chunk-wise up front (exact, so the four-way
      // partial sums below are bit-identical to blas::dot's) — w's chunk
      // once per tile, each row's chunk once.
      W wbuf[kTile], vbufc[kTile];
      const std::ptrdiff_t len = t1 - t0;
      const W* __restrict wc = to_acc_chunk(w + t0, wbuf, len);
      for (int j = 0; j < k; ++j) {
        const TV* __restrict vj = v + static_cast<std::ptrdiff_t>(j) * ld;
        const W* __restrict vc = to_acc_chunk(vj + t0, vbufc, len);
        W s0 = acc[4 * j], s1 = acc[4 * j + 1], s2 = acc[4 * j + 2], s3 = acc[4 * j + 3];
        for (std::ptrdiff_t i = 0; i < len; i += 4) {
          s0 += vc[i] * wc[i];
          s1 += vc[i + 1] * wc[i + 1];
          s2 += vc[i + 2] * wc[i + 2];
          s3 += vc[i + 3] * wc[i + 3];
        }
        acc[4 * j] = s0;
        acc[4 * j + 1] = s1;
        acc[4 * j + 2] = s2;
        acc[4 * j + 3] = s3;
      }
    } else {
      // Greedy 8/4/2/1 register-blocked groups.  Grouping is numerically
      // free (each column keeps its own chain in its own i-order), so every
      // width runs fully unrolled — no dynamic-width tail kernel.
      int j0 = 0;
      for (; j0 + 8 <= k; j0 += 8)
        dot_many_group<TV, TW, W, 8>(v + static_cast<std::ptrdiff_t>(j0) * ld, ld, w,
                                     t0, t1, acc + j0);
      if (k - j0 >= 4) {
        dot_many_group<TV, TW, W, 4>(v + static_cast<std::ptrdiff_t>(j0) * ld, ld, w,
                                     t0, t1, acc + j0);
        j0 += 4;
      }
      if (k - j0 >= 2) {
        dot_many_group<TV, TW, W, 2>(v + static_cast<std::ptrdiff_t>(j0) * ld, ld, w,
                                     t0, t1, acc + j0);
        j0 += 2;
      }
      if (k - j0 == 1)
        dot_many_group<TV, TW, W, 1>(v + static_cast<std::ptrdiff_t>(j0) * ld, ld, w,
                                     t0, t1, acc + j0);
    }
  }
}

}  // namespace block_detail

/// out[j] = Σ_i V_j[i]·w[i] for j in [0, k).  V_j = v + j·ld; out has k
/// entries of the accumulator type (fp32 when either input is fp16).
/// One sweep over the k·n block instead of k launches re-reading w.
template <class TV, class TW>
void dot_many(const TV* v, std::ptrdiff_t ld, int k, std::span<const TW> w,
              acc_t<promote_t<TV, TW>>* out) {
  using W = acc_t<promote_t<TV, TW>>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(w.size());
  if (k <= 0) return;
  constexpr bool half_path = (sizeof(TV) == 2 || sizeof(TW) == 2);
  constexpr int lanes = half_path ? 4 : 1;
  const std::ptrdiff_t n4 = half_path ? n - (n % 4) : n;

  // Stack accumulators for the common case — the inner F3R levels call this
  // millions of times on short vectors, where a malloc would rival the
  // fork-join cost the fusion removes.
  W acc_stack[block_detail::kMaxStackK * 4];
  std::vector<W> acc_heap;
  W* acc = acc_stack;
  if (k > block_detail::kMaxStackK) {
    acc_heap.resize(static_cast<std::size_t>(k) * lanes);
    acc = acc_heap.data();
  }
  for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(k) * lanes; ++j) acc[j] = W{0};
#ifdef _OPENMP
  if (static_cast<std::ptrdiff_t>(k) * n > parallel_threshold() && n4 >= 4) {
    // Per-thread partials over 4-aligned chunks, combined in thread order:
    // deterministic for a fixed thread count, and identical to the serial
    // (= blas::dot single-thread) order when one thread runs.
    const int max_t = omp_get_max_threads();
    // Reusable team-wide scratch owned by the CALLING thread (grows, never
    // shrinks: no malloc per Arnoldi step).  The pointer must be hoisted
    // before the parallel region — naming `partial` inside it would resolve
    // to each worker's own (empty) thread_local instance; all workers have
    // to write through this one buffer, tid-offset, for the merge below.
    static thread_local std::vector<W> partial;
    partial.assign(static_cast<std::size_t>(max_t) * k * lanes, W{0});
    W* const part = partial.data();
    int used = 1;
#pragma omp parallel
    {
      const int nt = omp_get_num_threads();
      const int tid = omp_get_thread_num();
#pragma omp single
      used = nt;
      // ceil(n4/nt) rounded UP to a multiple of 4: chunks stay 4-aligned
      // for the fp16 unroll while the last chunk still reaches n4.
      const std::ptrdiff_t per = (((n4 + nt - 1) / nt) + 3) / 4 * 4;
      const std::ptrdiff_t i0 = std::min<std::ptrdiff_t>(per * tid, n4);
      const std::ptrdiff_t i1 = std::min<std::ptrdiff_t>(i0 + per, n4);
      if (i0 < i1)
        block_detail::dot_many_range<TV, TW, W>(
            v, ld, k, w.data(), i0, i1,
            part + static_cast<std::size_t>(tid) * k * lanes);
    }
    for (int t = 0; t < used; ++t)
      for (std::size_t j = 0; j < static_cast<std::size_t>(k) * lanes; ++j)
        acc[j] += part[static_cast<std::size_t>(t) * k * lanes + j];
  } else {
    block_detail::dot_many_range<TV, TW, W>(v, ld, k, w.data(), 0, n4, acc);
  }
#else
  block_detail::dot_many_range<TV, TW, W>(v, ld, k, w.data(), 0, n4, acc);
#endif

  if constexpr (half_path) {
    for (int j = 0; j < k; ++j) {
      const TV* vj = v + static_cast<std::ptrdiff_t>(j) * ld;
      W s0 = acc[4 * j];
      for (std::ptrdiff_t i = n4; i < n; ++i)
        s0 += static_cast<W>(vj[i]) * static_cast<W>(w[i]);
      out[j] = (s0 + acc[4 * j + 1]) + (acc[4 * j + 2] + acc[4 * j + 3]);
    }
  } else {
    for (int j = 0; j < k; ++j) out[j] = acc[j];
  }
}

/// w ±= Σ_j h[j]·V_j in one read-modify-write of w (`subtract` picks the
/// sign; Gram-Schmidt subtracts, the solution update adds).  The running
/// value is rounded to TW after every term, reproducing the k chained
/// axpy() stores bit-for-bit — element-local, so exact at any thread count.
template <class TV, class TW, class S>
void axpy_many(const TV* v, std::ptrdiff_t ld, int k, const S* h, std::span<TW> w,
               bool subtract = false) {
  using W = promote_t<promote_t<TV, TW>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(w.size());
  if (k <= 0) return;
  W a_stack[block_detail::kMaxStackK];
  std::vector<W> a_heap;
  W* a = a_stack;
  if (k > block_detail::kMaxStackK) {
    a_heap.resize(static_cast<std::size_t>(k));
    a = a_heap.data();
  }
  for (int j = 0; j < k; ++j) a[j] = subtract ? -static_cast<W>(h[j]) : static_cast<W>(h[j]);
  const W* __restrict ap = a;
  TW* __restrict wp = w.data();
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * n > parallel_threshold())
  for (std::ptrdiff_t t0 = 0; t0 < n; t0 += block_detail::kTile) {
    const std::ptrdiff_t len = std::min(t0 + block_detail::kTile, n) - t0;
    W buf[block_detail::kTile];
    if constexpr (std::is_same_v<TW, half> && std::is_same_v<W, float>) {
      half_to_float_n(wp + t0, buf, len);
    } else {
      for (std::ptrdiff_t i = 0; i < len; ++i) buf[i] = static_cast<W>(wp[t0 + i]);
    }
    for (int j = 0; j < k; ++j) {
      const TV* __restrict vj = v + static_cast<std::ptrdiff_t>(j) * ld + t0;
      const W aj = ap[j];
      if constexpr (std::is_same_v<TW, W>) {
#pragma omp simd
        for (std::ptrdiff_t i = 0; i < len; ++i) buf[i] += aj * static_cast<W>(vj[i]);
      } else {
        // TW narrower than the compute type: round after every term, as the
        // chained axpy() stores would.  fp16 conversions go through the
        // vectorized F16C helpers — GCC scalarizes _Float16 conversion
        // loops into serial vcvtsh2ss chains otherwise (see half.hpp).
        W vf[block_detail::kTile];
        const W* __restrict vc = to_acc_chunk(vj, vf, len);
        if constexpr (std::is_same_v<TW, half> && std::is_same_v<W, float>) {
          for (std::ptrdiff_t i = 0; i < len; ++i) buf[i] += aj * vc[i];
          round_half_n(buf, len);
        } else {
          for (std::ptrdiff_t i = 0; i < len; ++i)
            buf[i] = static_cast<W>(static_cast<TW>(buf[i] + aj * vc[i]));
        }
      }
    }
    if constexpr (std::is_same_v<TW, half> && std::is_same_v<W, float>) {
      // buf already carries half-rounded values; this conversion is exact.
      float_to_half_n(buf, wp + t0, len);
    } else {
      for (std::ptrdiff_t i = 0; i < len; ++i) wp[t0 + i] = static_cast<TW>(buf[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS column kernels — the batched-solve hot path.
//
// A batched solver advances k independent right-hand sides in lockstep
// through k-column panels; the default kRowMajor layout keeps column c
// contiguous at x + c·ld, while kColMajor interleaves the columns so the
// live set of a compacted panel streams unit-stride (see panel.hpp).  The
// kernels below fuse the k per-column BLAS-1 calls of one solver step into
// a single parallel region.  Element-local kernels (axpy_cols / axpby_cols)
// are bit-identical to the per-column blas1 calls they replace at any
// thread count; dot_cols reproduces the SERIAL blas::dot accumulation
// order per column exactly (each column is reduced by one thread), which
// is the deterministic contract the conformance tests pin.
//
// `active` (optional) masks columns out of the update entirely — a batched
// solver freezes a column the moment it converges or breaks down, and a
// frozen column's data must not be touched (it may hold non-finite values
// after a breakdown, so even a mathematically-neutral `+= 0·x` would
// corrupt it with NaNs).
// ---------------------------------------------------------------------------

/// Column-group width of the reduction kernels' stack accumulators; wider
/// batches are processed in groups (per-column results unaffected).
inline constexpr int kColsMax = 16;

namespace block_detail {

/// Interleaved multi-column dot core: per column c the accumulation order
/// over i is exactly single-threaded blas::dot's (single chain on the
/// general path, the four-way unroll on the fp16 path); the column loop is
/// innermost so the k independent chains advance together — the reduction
/// becomes throughput-bound instead of latency-bound.  Deliberately
/// serial: determinism of the batched path must not depend on the OpenMP
/// team, and the reduction is a small slice of a batched solver step.
///
/// LX / LY select each panel's layout (see panel.hpp); only the addressing
/// changes with layout, never the per-column accumulation order, so both
/// layouts produce bit-identical results.  Under kColMajor with a pinned
/// KC the inner column loop reads unit-stride — the layout compacted
/// survivor panels use to stream exactly the live columns.
template <PanelLayout LX, PanelLayout LY, class TX, class TY, class W, int KC>
inline void dot_cols_group(const TX* __restrict x, std::ptrdiff_t ldx,
                           const TY* __restrict y, std::ptrdiff_t ldy, int k_dyn,
                           std::ptrdiff_t nn, W* __restrict out) {
  const int k = KC > 0 ? KC : k_dyn;
  if constexpr (sizeof(TX) == 2 || sizeof(TY) == 2) {
    // fp16 operands: converting inside the arithmetic loop scalarizes into
    // a serial vcvtsh2ss chain under GCC 12 (~1 GB/s), so the two common
    // panel shapes tile-convert through the vectorized F16C helpers first
    // and accumulate on the converted chunks.  half→float conversion is
    // value-exact and kTile is a multiple of 4, so the four-lane chain
    // each column's elements land in (lane = global i mod 4, tail to lane
    // 0) — and hence the result bits — are exactly the in-loop path's.
    W acc[4][kColsMax] = {};
    bool tiled = false;
    if constexpr (LX == PanelLayout::kRowMajor && LY == PanelLayout::kRowMajor) {
      // Contiguous columns: convert each column in kTile chunks.
      W xb[kTile], yb[kTile];
      for (int c = 0; c < k; ++c) {
        const TX* __restrict xc = x + static_cast<std::ptrdiff_t>(c) * ldx;
        const TY* __restrict yc = y + static_cast<std::ptrdiff_t>(c) * ldy;
        W a0{}, a1{}, a2{}, a3{};
        for (std::ptrdiff_t t0 = 0; t0 < nn; t0 += kTile) {
          const std::ptrdiff_t len = std::min(t0 + kTile, nn) - t0;
          const W* __restrict xv = to_acc_chunk(xc + t0, xb, len);
          const W* __restrict yv = to_acc_chunk(yc + t0, yb, len);
          std::ptrdiff_t i = 0;
          for (; i + 4 <= len; i += 4) {
            a0 += xv[i] * yv[i];
            a1 += xv[i + 1] * yv[i + 1];
            a2 += xv[i + 2] * yv[i + 2];
            a3 += xv[i + 3] * yv[i + 3];
          }
          for (; i < len; ++i) a0 += xv[i] * yv[i];  // only the final tile is ragged
        }
        acc[0][c] = a0;
        acc[1][c] = a1;
        acc[2][c] = a2;
        acc[3][c] = a3;
      }
      tiled = true;
    } else if constexpr (LX == PanelLayout::kColMajor && LY == PanelLayout::kColMajor) {
      if (ldx == k && ldy == k) {
        // Fully-interleaved panels covering the whole group: a block of
        // rows is one contiguous run of rows·k elements — convert it
        // whole.  Row tiles stay multiples of 4 so lane assignment is
        // unchanged across chunk boundaries.
        const std::ptrdiff_t rows = std::max<std::ptrdiff_t>(kTile / k & ~std::ptrdiff_t{3}, 4);
        W xb[kTile], yb[kTile];
        for (std::ptrdiff_t t0 = 0; t0 < nn; t0 += rows) {
          const std::ptrdiff_t len = std::min(t0 + rows, nn) - t0;
          const W* __restrict xv = to_acc_chunk(x + t0 * k, xb, len * k);
          const W* __restrict yv = to_acc_chunk(y + t0 * k, yb, len * k);
          std::ptrdiff_t i = 0;
          for (; i + 4 <= len; i += 4) {
            for (int j = 0; j < 4; ++j) {
              W* __restrict lane = acc[j];
              const W* __restrict xr = xv + (i + j) * k;
              const W* __restrict yr = yv + (i + j) * k;
              for (int c = 0; c < k; ++c) lane[c] += xr[c] * yr[c];
            }
          }
          for (; i < len; ++i)
            for (int c = 0; c < k; ++c) acc[0][c] += xv[i * k + c] * yv[i * k + c];
        }
        tiled = true;
      }
    }
    if (!tiled) {
      // Mixed layouts / strided interleave (group narrower than the panel):
      // the generic addressed sweep — same chains, scalar conversions.
      std::ptrdiff_t i = 0;
      for (; i + 4 <= nn; i += 4) {
        for (int j = 0; j < 4; ++j) {
          W* __restrict lane = acc[j];
          for (int c = 0; c < k; ++c)
            lane[c] += static_cast<W>(*panel_at<LX>(x, ldx, c, i + j)) *
                       static_cast<W>(*panel_at<LY>(y, ldy, c, i + j));
        }
      }
      for (; i < nn; ++i)
        for (int c = 0; c < k; ++c)
          acc[0][c] += static_cast<W>(*panel_at<LX>(x, ldx, c, i)) *
                       static_cast<W>(*panel_at<LY>(y, ldy, c, i));
    }
    for (int c = 0; c < k; ++c)
      out[c] = (acc[0][c] + acc[1][c]) + (acc[2][c] + acc[3][c]);
  } else {
    W acc[kColsMax] = {};
    for (std::ptrdiff_t i = 0; i < nn; ++i)
      for (int c = 0; c < k; ++c)
        acc[c] += static_cast<W>(*panel_at<LX>(x, ldx, c, i)) *
                  static_cast<W>(*panel_at<LY>(y, ldy, c, i));
    for (int c = 0; c < k; ++c) out[c] = acc[c];
  }
}

/// Layout-pinned dispatcher behind dot_cols: greedy 16/8/4 groups with the
/// sub-4 tails ALSO pinned (1/2/3) — previously any <4 tail fell into the
/// dynamic <...,0> kernel, silently losing the unrolled path for odd
/// widths like k=5,7,9,17 (the post-compaction widths a staggered batch
/// actually produces).  Group decomposition never changes per-column
/// results, so every width is now fully unrolled.
template <PanelLayout LX, PanelLayout LY, class TX, class TY, class W>
void dot_cols_dispatch(const TX* x, std::ptrdiff_t ldx, const TY* y, std::ptrdiff_t ldy,
                       int k, std::ptrdiff_t nn, W* out, const unsigned char* active) {
  W grp[kColsMax];
  for (int c0 = 0; c0 < k;) {
    const int kc = greedy_group(k - c0, kColsMax);
    const TX* xg = LX == PanelLayout::kColMajor ? x + c0 : x + static_cast<std::ptrdiff_t>(c0) * ldx;
    const TY* yg = LY == PanelLayout::kColMajor ? y + c0 : y + static_cast<std::ptrdiff_t>(c0) * ldy;
    // Masked columns still participate in the sweep (their chains cost a
    // few registers, and compacting would change nothing numerically);
    // only the result store honors the mask.
    switch (kc) {
      case 1: dot_cols_group<LX, LY, TX, TY, W, 1>(xg, ldx, yg, ldy, kc, nn, grp); break;
      case 2: dot_cols_group<LX, LY, TX, TY, W, 2>(xg, ldx, yg, ldy, kc, nn, grp); break;
      case 3: dot_cols_group<LX, LY, TX, TY, W, 3>(xg, ldx, yg, ldy, kc, nn, grp); break;
      case 4: dot_cols_group<LX, LY, TX, TY, W, 4>(xg, ldx, yg, ldy, kc, nn, grp); break;
      case 8: dot_cols_group<LX, LY, TX, TY, W, 8>(xg, ldx, yg, ldy, kc, nn, grp); break;
      case kColsMax:
        dot_cols_group<LX, LY, TX, TY, W, kColsMax>(xg, ldx, yg, ldy, kc, nn, grp);
        break;
      default: dot_cols_group<LX, LY, TX, TY, W, 0>(xg, ldx, yg, ldy, kc, nn, grp); break;
    }
    for (int c = 0; c < kc; ++c)
      if (active == nullptr || active[c0 + c]) out[c0 + c] = grp[c];
    c0 += kc;
  }
}

}  // namespace block_detail

/// out[c] = Σ_i x_c[i]·y_c[i] for c in [0, k), panels addressed per
/// lx/ly (see panel.hpp; ldx/ldy are the layout's leading dimension).
/// Per column bit-identical to SINGLE-THREADED blas::dot (including the
/// four-way fp16 unroll) at any k and either layout: only the schedule
/// across columns and the addressing differ.  `active` masks columns out
/// entirely (their out[] untouched).
template <class TX, class TY>
void dot_cols(const TX* x, std::ptrdiff_t ldx, const TY* y, std::ptrdiff_t ldy, int k,
              std::size_t n, acc_t<promote_t<TX, TY>>* out,
              const unsigned char* active = nullptr,
              PanelLayout lx = PanelLayout::kRowMajor,
              PanelLayout ly = PanelLayout::kRowMajor) {
  using W = acc_t<promote_t<TX, TY>>;
  using PL = PanelLayout;
  const std::ptrdiff_t nn = static_cast<std::ptrdiff_t>(n);
  if (lx == PL::kRowMajor && ly == PL::kRowMajor)
    block_detail::dot_cols_dispatch<PL::kRowMajor, PL::kRowMajor, TX, TY, W>(
        x, ldx, y, ldy, k, nn, out, active);
  else if (lx == PL::kColMajor && ly == PL::kColMajor)
    block_detail::dot_cols_dispatch<PL::kColMajor, PL::kColMajor, TX, TY, W>(
        x, ldx, y, ldy, k, nn, out, active);
  else if (lx == PL::kColMajor)
    block_detail::dot_cols_dispatch<PL::kColMajor, PL::kRowMajor, TX, TY, W>(
        x, ldx, y, ldy, k, nn, out, active);
  else
    block_detail::dot_cols_dispatch<PL::kRowMajor, PL::kColMajor, TX, TY, W>(
        x, ldx, y, ldy, k, nn, out, active);
}

/// out[c] = ‖x_c‖₂ for c in [0, k): per column bit-identical to
/// single-threaded blas::nrm2 — the sum of squares goes through dot_cols'
/// interleaved sweep (x·x is nrm2's accumulation exactly, lane grouping
/// included), followed by the same double-rounded sqrt store.
template <class T>
void nrm2_cols(const T* x, std::ptrdiff_t ldx, int k, std::size_t n, acc_t<T>* out,
               const unsigned char* active = nullptr,
               PanelLayout lx = PanelLayout::kRowMajor) {
  using W = acc_t<T>;
  W sq[kColsMax];
  for (int c0 = 0; c0 < k; c0 += kColsMax) {
    const int kc = std::min(k - c0, kColsMax);
    const T* xg = lx == PanelLayout::kColMajor ? x + c0
                                               : x + static_cast<std::ptrdiff_t>(c0) * ldx;
    dot_cols(xg, ldx, xg, ldx, kc, n, sq, nullptr, lx, lx);
    for (int c = 0; c < kc; ++c)
      if (active == nullptr || active[c0 + c])
        out[c0 + c] = static_cast<W>(std::sqrt(static_cast<double>(sq[c])));
  }
}

/// y_c += alpha[c]·x_c for every unmasked column — k axpys in one parallel
/// region, each element rounded exactly as blas::axpy's store rounds it.
/// `ymap` (optional) is the compaction layer's active→original index map:
/// column c of X updates y column ymap[c] instead of c, so a compacted
/// panel can scatter into caller-side storage laid out at original column
/// positions without staging copies.
template <class TX, class TY, class S>
void axpy_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, TY* yp,
               std::ptrdiff_t ldy, int k, std::size_t n,
               const unsigned char* active = nullptr, const int* ymap = nullptr,
               PanelLayout lx = PanelLayout::kRowMajor,
               PanelLayout ly = PanelLayout::kRowMajor) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t len = static_cast<std::ptrdiff_t>(n);
  if (lx == PanelLayout::kColMajor || ly == PanelLayout::kColMajor) {
    // Interleaved panels: i-outer / column-inner, unit-stride across the
    // live columns when both sides are interleaved.  Element-local math is
    // the row-major path's exactly (fp16 conversions are value-exact and
    // the float→half store rounds identically to float_to_half_n), so the
    // layouts agree bit-for-bit at any thread count.
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * len > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < len; t0 += block_detail::kTile) {
      const std::ptrdiff_t t1 = std::min(t0 + block_detail::kTile, len);
      for (std::ptrdiff_t i = t0; i < t1; ++i) {
        for (int c = 0; c < k; ++c) {
          if (active != nullptr && !active[c]) continue;
          const std::ptrdiff_t yc = ymap != nullptr ? ymap[c] : c;
          const TX xv = *panel_at(x, ldx, lx, c, i);
          TY* y = panel_at(yp, ldy, ly, yc, i);
          *y = static_cast<TY>(static_cast<W>(*y) +
                               static_cast<W>(alpha[c]) * static_cast<W>(xv));
        }
      }
    }
    return;
  }
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * len > parallel_threshold())
  for (std::ptrdiff_t t0 = 0; t0 < len; t0 += block_detail::kTile) {
    const std::ptrdiff_t tl = std::min(t0 + block_detail::kTile, len) - t0;
    for (int c = 0; c < k; ++c) {
      if (active != nullptr && !active[c]) continue;
      const W a = static_cast<W>(alpha[c]);
      const std::ptrdiff_t yc_idx = ymap != nullptr ? ymap[c] : c;
      const TX* __restrict xc = x + static_cast<std::ptrdiff_t>(c) * ldx + t0;
      TY* __restrict yc = yp + yc_idx * ldy + t0;
      if constexpr ((std::is_same_v<TX, half> || std::is_same_v<TY, half>) &&
                    std::is_same_v<W, float>) {
        float xb[block_detail::kTile], yb[block_detail::kTile], ob[block_detail::kTile];
        const float* xv = to_acc_chunk(xc, xb, tl);
        const float* yv = to_acc_chunk(yc, yb, tl);
        for (std::ptrdiff_t i = 0; i < tl; ++i) ob[i] = yv[i] + a * xv[i];
        if constexpr (std::is_same_v<TY, half>) {
          float_to_half_n(ob, yc, tl);
        } else {
          for (std::ptrdiff_t i = 0; i < tl; ++i) yc[i] = static_cast<TY>(ob[i]);
        }
      } else {
        for (std::ptrdiff_t i = 0; i < tl; ++i)
          yc[i] = static_cast<TY>(static_cast<W>(yc[i]) + a * static_cast<W>(xc[i]));
      }
    }
  }
}

/// y_c = alpha[c]·x_c + beta[c]·y_c for every unmasked column (the CG /
/// BiCGStab direction update, batched).  Element-local like blas::axpby.
template <class TX, class TY, class S>
void axpby_cols(const S* alpha, const TX* x, std::ptrdiff_t ldx, const S* beta, TY* yp,
                std::ptrdiff_t ldy, int k, std::size_t n,
                const unsigned char* active = nullptr,
                PanelLayout lx = PanelLayout::kRowMajor,
                PanelLayout ly = PanelLayout::kRowMajor) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t len = static_cast<std::ptrdiff_t>(n);
  if (lx == PanelLayout::kColMajor || ly == PanelLayout::kColMajor) {
    // Interleaved variant — see axpy_cols.
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * len > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < len; t0 += block_detail::kTile) {
      const std::ptrdiff_t t1 = std::min(t0 + block_detail::kTile, len);
      for (std::ptrdiff_t i = t0; i < t1; ++i) {
        for (int c = 0; c < k; ++c) {
          if (active != nullptr && !active[c]) continue;
          TY* y = panel_at(yp, ldy, ly, c, i);
          *y = static_cast<TY>(static_cast<W>(alpha[c]) *
                                   static_cast<W>(*panel_at(x, ldx, lx, c, i)) +
                               static_cast<W>(beta[c]) * static_cast<W>(*y));
        }
      }
    }
    return;
  }
#pragma omp parallel for schedule(static) if (static_cast<std::ptrdiff_t>(k) * len > parallel_threshold())
  for (std::ptrdiff_t t0 = 0; t0 < len; t0 += block_detail::kTile) {
    const std::ptrdiff_t tl = std::min(t0 + block_detail::kTile, len) - t0;
    for (int c = 0; c < k; ++c) {
      if (active != nullptr && !active[c]) continue;
      const W a = static_cast<W>(alpha[c]), b = static_cast<W>(beta[c]);
      const TX* __restrict xc = x + static_cast<std::ptrdiff_t>(c) * ldx + t0;
      TY* __restrict yc = yp + static_cast<std::ptrdiff_t>(c) * ldy + t0;
      for (std::ptrdiff_t i = 0; i < tl; ++i)
        yc[i] = static_cast<TY>(a * static_cast<W>(xc[i]) + b * static_cast<W>(yc[i]));
    }
  }
}

/// y = α·x — fuses FGMRES's normalize-then-copy (scal + copy: two passes,
/// one of them read-modify-write) into a single streaming read and write.
/// Rounds α·x[i] to TY exactly as scal()'s store does.
template <class TX, class TY, class S>
void scal_copy(S alpha, std::span<const TX> x, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
  const TX* __restrict xp = x.data();
  TY* __restrict yp = y.data();
  if constexpr ((std::is_same_v<TX, half> || std::is_same_v<TY, half>) &&
                std::is_same_v<W, float>) {
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < n; t0 += block_detail::kTile) {
      const std::ptrdiff_t len = std::min(t0 + block_detail::kTile, n) - t0;
      float xb[block_detail::kTile], yb[block_detail::kTile];
      const float* xc = to_acc_chunk(xp + t0, xb, len);
      for (std::ptrdiff_t i = 0; i < len; ++i) yb[i] = a * xc[i];
      if constexpr (std::is_same_v<TY, half>) {
        float_to_half_n(yb, yp + t0, len);
      } else {
        for (std::ptrdiff_t i = 0; i < len; ++i) yp[t0 + i] = static_cast<TY>(yb[i]);
      }
    }
  } else {
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i)
      yp[i] = static_cast<TY>(a * static_cast<W>(xp[i]));
  }
}

// ---------------------------------------------------------------------------
// Non-finite guards — the resilience layer's cheap detection primitives.
//
// A NaN/Inf anywhere in a Krylov panel poisons every later iterate of its
// column, so the batched solvers scan (a) residual NORMS every iteration —
// free, the norm is already computed and a NaN input makes it NaN — and
// (b) incoming panels at wave boundaries via the scans below.  The scans
// are branch-light single passes (x − x == 0 is false exactly for NaN and
// ±Inf, and vectorizes; fp16 tests the exponent bits directly), orders of
// magnitude cheaper than one SpMV, and make no arithmetic change to any
// solver path: they only READ.
// ---------------------------------------------------------------------------

namespace block_detail {

inline bool finite_one(double v) { return v - v == 0.0; }
inline bool finite_one(float v) { return v - v == 0.0f; }
inline bool finite_one(half v) {
  // binary16: exponent all-ones ⇔ Inf/NaN.  Bit test avoids promoting
  // through arithmetic that could itself trap on signaling payloads.
  std::uint16_t bits;
  static_assert(sizeof(half) == sizeof(bits));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return (bits & 0x7C00u) != 0x7C00u;
}

}  // namespace block_detail

/// True iff any element of x is NaN or ±Inf.  One streaming pass; the
/// per-tile early-out keeps the poisoned-input case cheap without putting a
/// branch in the inner loop.
template <class T>
[[nodiscard]] bool has_nonfinite(std::span<const T> x) {
  const T* __restrict p = x.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t t0 = 0; t0 < n; t0 += block_detail::kTile) {
    const std::ptrdiff_t t1 = std::min(t0 + block_detail::kTile, n);
    int bad = 0;
    for (std::ptrdiff_t i = t0; i < t1; ++i) bad |= !block_detail::finite_one(p[i]);
    if (bad != 0) return true;
  }
  return false;
}

/// Panel variant: scan columns [0, k) of a panel addressed per `lay` (see
/// panel.hpp).  Returns the index of the first column containing a
/// non-finite value, or -1 when the whole panel is finite.
template <class T>
[[nodiscard]] int first_nonfinite_col(const T* p, std::ptrdiff_t ld, int k, std::size_t n,
                                      PanelLayout lay = PanelLayout::kRowMajor) {
  const std::ptrdiff_t len = static_cast<std::ptrdiff_t>(n);
  if (lay == PanelLayout::kRowMajor) {
    for (int c = 0; c < k; ++c)
      if (has_nonfinite(std::span<const T>(p + static_cast<std::ptrdiff_t>(c) * ld,
                                           static_cast<std::size_t>(len))))
        return c;
    return -1;
  }
  // Interleaved: one pass over the storage, per-column verdicts.
  for (int c = 0; c < k; ++c) {
    int bad = 0;
    for (std::ptrdiff_t i = 0; i < len; ++i)
      bad |= !block_detail::finite_one(p[i * ld + c]);
    if (bad != 0) return c;
  }
  return -1;
}

}  // namespace nk::blas
