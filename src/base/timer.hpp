// Wall-clock timing utilities for solver and kernel measurement.
#pragma once

#include <chrono>
#include <cstdint>

namespace nk {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums intervals across start/stop pairs.  Used to
/// attribute time to individual nesting levels in instrumented runs.
class SectionTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) { total_ += t_.seconds(); ++count_; running_ = false; }
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  void reset() { total_ = 0.0; count_ = 0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  std::uint64_t count_ = 0;
  bool running_ = false;
};

}  // namespace nk
