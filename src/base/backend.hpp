// Execution-space backends — the dispatch axis behind the kernel layer.
//
// Every compute kernel the solvers touch (BLAS-1/column kernels, CSR/SELL
// SpMV/SpMM, the block-triangular preconditioner sweeps, fp16 converts) is
// reachable through a per-backend dispatch table (backend/kernels.hpp), so
// an engine never names a kernel implementation.  Two backends ship:
//
//  * kHost   — the production backend: OpenMP-parallel loops, F16C bulk
//              fp16 conversion, optional AVX-512 FP16 natives.  The
//              default; leaves the committed conformance baseline
//              byte-for-byte unchanged.
//  * kSerial — the reference backend (backend/serial_kernels.hpp):
//              independently written single-threaded loops, no OpenMP
//              regions, no SIMD dispatch.  The bit-identity oracle for
//              element-local kernels and the tolerance-tier cross-check
//              for reductions; also what a -DNKRYLOV_OPENMP=OFF build
//              exercises end to end.
//
// Adding a backend (omp-target, CUDA) is a drop-in directory: implement
// the kernel set under src/backend/<name>/, add an enumerator + name
// here, and extend the dispatch branches in backend/kernels.hpp — no
// solver, engine, or service file changes.
//
// Selection: spec (`";backend=serial"` or the `":serial"` suffix) >
// environment (`NKRYLOV_BACKEND`) > default (host).  Unknown names never
// fall back silently: spec strings throw SpecError at parse (exit(2)
// through the CLI wrappers), a bad environment value surfaces as
// SolveStatus::kInvalidInput ("backend: ...") from Session::solve.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nk {

enum class Backend : std::uint8_t {
  kHost = 0,    ///< OpenMP + SIMD production kernels (the default)
  kSerial = 1,  ///< single-threaded reference kernels (the oracle)
};

[[nodiscard]] constexpr const char* backend_name(Backend b) {
  return b == Backend::kSerial ? "serial" : "host";
}

/// Spec/env token → backend.  "omp" is accepted as an alias for the host
/// backend (the spec-grammar spelling the ROADMAP sketched); the canonical
/// name — what to_string and env_summary emit — is "host".
[[nodiscard]] inline std::optional<Backend> parse_backend(std::string_view s) {
  if (s == "host" || s == "omp") return Backend::kHost;
  if (s == "serial") return Backend::kSerial;
  return std::nullopt;
}

/// Known names, for error messages ("backend: unknown 'x' (known: ...)").
[[nodiscard]] constexpr const char* backend_names() { return "host, omp, serial"; }

}  // namespace nk
