// Deterministic, seedable random number generation for reproducible
// experiments.  The paper uses random right-hand sides uniformly
// distributed in [0, 1); every bench and test here seeds explicitly so
// reruns are bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nk {

/// SplitMix64 — tiny, fast, full-period 64-bit generator.  Used directly and
/// to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library's workhorse RNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

/// Fill `x` with uniform values in [lo, hi) — the paper's RHS distribution
/// is uniform(0,1).
template <class T>
void fill_uniform(std::span<T> x, std::uint64_t seed, double lo = 0.0, double hi = 1.0) {
  Xoshiro256 rng(seed);
  for (auto& v : x) v = static_cast<T>(rng.uniform(lo, hi));
}

/// Convenience: a fresh uniform random vector of length n.
template <class T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed, double lo = 0.0, double hi = 1.0) {
  std::vector<T> x(n);
  fill_uniform<T>(x, seed, lo, hi);
  return x;
}

}  // namespace nk
