// Native AVX-512 FP16 kernels for the fp16 inner-level BLAS-1 operations,
// behind a runtime dispatch.
//
// The F16C paths in blas1.hpp convert 8 halves at a time to fp32, compute
// there, and convert back.  On an AVX-512 FP16 machine (Sapphire Rapids
// and later) the element-local kernels can instead run 32 lanes per
// instruction directly in binary16 (vmulph / vfmadd231ph), and the
// reductions can convert at ZMM width and accumulate in fp32 — twice the
// lane count of the F16C forms with fewer conversion instructions.
//
// Numerical tiers (documented, tested in simd_fp16_test.cpp):
//
//  * scal:  x[i] = a_h ⊗_h x[i]   — one binary16 rounding where the F16C
//    path computes in fp32 and rounds once at the store.  The two paths
//    agree within 1 ulp_h plus the rounding of α to binary16.
//  * axpy:  y[i] = fma_h(a_h, x[i], y[i]) — ONE binary16 rounding (fused)
//    where the F16C path rounds the fp32 result once.  Within 1 ulp_h of
//    the F16C result plus α's binary16 rounding.
//  * dot / nrm2: products exact in fp32 (half→float conversion is exact),
//    accumulated in fp32 like the reference — but across 32 SIMD lanes, so
//    the SUM is reassociated.  Same value class as any thread-count change
//    of the parallel reference; compared with an fp32-accumulation bound.
//
// Dispatch: enabled() requires (a) the translation unit to be compiled
// with -mavx512fp16 (via -march=native on such a machine), (b) the CPU to
// report the feature, and (c) the env knob NKRYLOV_AVX512FP16 to be set
// truthy.  DEFAULT OFF: the committed conformance baseline pins the F16C
// paths bit-for-bit, so the native paths are opt-in; F16C remains the
// fallback and the bench reference.
#pragma once

#include <cstddef>
#include <cstdlib>

#include "base/env.hpp"
#include "base/half.hpp"

#if defined(__AVX512FP16__)
#include <immintrin.h>
#endif

namespace nk::simd_fp16 {

/// True when this build carries the native AVX-512 FP16 kernel bodies.
[[nodiscard]] constexpr bool compiled() {
#if defined(__AVX512FP16__)
  return true;
#else
  return false;
#endif
}

/// True when the executing CPU reports the AVX512-FP16 feature.
[[nodiscard]] inline bool cpu_supported() {
#if defined(__AVX512FP16__)
  return __builtin_cpu_supports("avx512fp16") != 0;
#else
  return false;
#endif
}

/// Runtime dispatch gate: compiled + CPU + env opt-in (NKRYLOV_AVX512FP16
/// = 1|on|true|yes).  A malformed value warns once naming the variable and
/// value and keeps the default (off) — garbage no longer silently opts the
/// non-bit-identical native kernels in.  Cached after first call.
[[nodiscard]] inline bool enabled() {
  static const bool on = [] {
    const bool opted_in = env_flag("NKRYLOV_AVX512FP16", false);
    return compiled() && cpu_supported() && opted_in;
  }();
  return on;
}

#if defined(__AVX512FP16__)

/// x[i] = a ⊗_h x[i] over [0, n) — 32 binary16 multiplies per vmulph.
inline void scal_n(half a, half* x, std::ptrdiff_t n) {
  const __m512h va = _mm512_set1_ph(a);
  std::ptrdiff_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512h v = _mm512_loadu_ph(x + i);
    _mm512_storeu_ph(x + i, _mm512_mul_ph(v, va));
  }
  for (; i < n; ++i) x[i] = static_cast<half>(a * x[i]);
}

/// y[i] = fma_h(a, x[i], y[i]) over [0, n) — fused binary16 multiply-add.
inline void axpy_n(half a, const half* x, half* y, std::ptrdiff_t n) {
  const __m512h va = _mm512_set1_ph(a);
  std::ptrdiff_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512h vx = _mm512_loadu_ph(x + i);
    const __m512h vy = _mm512_loadu_ph(y + i);
    _mm512_storeu_ph(y + i, _mm512_fmadd_ph(va, vx, vy));
  }
  for (; i < n; ++i)
    y[i] = static_cast<half>(__builtin_fmaf16(a, x[i], y[i]));
}

/// Σ x[i]·y[i] accumulated in fp32 (exact half→float conversion at ZMM
/// width, fp32 FMA, 32-lane reassociated sum).
[[nodiscard]] inline float dot_n(const half* x, const half* y, std::ptrdiff_t n) {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  std::ptrdiff_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i vx = _mm512_loadu_si512(x + i);
    const __m512i vy = _mm512_loadu_si512(y + i);
    const __m512 x0 = _mm512_cvtph_ps(_mm512_castsi512_si256(vx));
    const __m512 x1 = _mm512_cvtph_ps(_mm512_extracti64x4_epi64(vx, 1));
    const __m512 y0 = _mm512_cvtph_ps(_mm512_castsi512_si256(vy));
    const __m512 y1 = _mm512_cvtph_ps(_mm512_extracti64x4_epi64(vy, 1));
    acc0 = _mm512_fmadd_ps(x0, y0, acc0);
    acc1 = _mm512_fmadd_ps(x1, y1, acc1);
  }
  float s = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
  for (; i < n; ++i) s += static_cast<float>(x[i]) * static_cast<float>(y[i]);
  return s;
}

#else

// Stubs so call sites compile on non-AVX-512-FP16 builds; enabled() is
// constant false there, so these are unreachable.
inline void scal_n(half, half*, std::ptrdiff_t) {}
inline void axpy_n(half, const half*, half*, std::ptrdiff_t) {}
[[nodiscard]] inline float dot_n(const half*, const half*, std::ptrdiff_t) { return 0.0f; }

#endif  // __AVX512FP16__

}  // namespace nk::simd_fp16
