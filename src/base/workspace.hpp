// SolverWorkspace — the reusable allocation arena behind the solver
// setup/solve split.
//
// Krylov solvers need substantial scratch: FGMRES keeps the contiguous V/Z
// basis blocks, Richardson its residual and ω'-computation vectors, the
// precision bridges their conversion buffers.  Before this workspace every
// solver object owned those buffers privately, so solving against a new
// matrix (or rebuilding a nested solver tuple) re-allocated the whole set.
// A production service that solves many systems back-to-back wants the
// opposite: pay for setup once, then run solve()/solve_many() with zero
// per-call allocation, and *reuse* the same memory when it moves on to the
// next matrix of the same (or smaller) size.
//
// SolverWorkspace is a keyed, grow-only pool of typed buffers:
//
//   * get<T>(key, n) returns a span of n T's backed by a persistent slab.
//     The slab grows when n outgrows it and is otherwise reused as-is, so a
//     second setup() against an equally-sized matrix performs no
//     allocation at all.
//   * Keys are hierarchical by convention ("lvl1.fgmres.V"): every solver
//     in a nested tuple draws from the same workspace under its own
//     prefix, and rebuilding the tuple (new matrix, same shape) hits the
//     same keys.
//   * allocations() counts slab growths — tests assert it stays flat
//     across repeated solves, which is the "zero per-call allocation"
//     contract made checkable.
//
// A slab's span stays valid until a larger get() on the same key or
// release(); each key must have exactly ONE live consumer (the solver that
// owns the prefix), so the growth-invalidates-spans rule is local by
// construction.  Two live solvers sharing a workspace must therefore use
// distinct key prefixes — every solver constructor takes one — since the
// workspace cannot tell consumers apart: a second solver set up under the
// same key silently aliases (or, if larger, dangles) the first one's
// buffers.  Sequential reuse of a key by a NEW solver against the next
// matrix is exactly the intended pattern.  The workspace is not
// thread-safe; share one per solver pipeline, not across
// concurrently-solving pipelines.
// NUMA: freshly grown slab bytes are first-touch initialized by a static
// OpenMP sweep whose contiguous per-thread slices match the static
// scheduling of every kernel that later reads the buffer, so on a
// first-touch NUMA system each page lands on the node of the thread that
// will stream it.  (Serial memset placed every page on the calling
// thread's node — the classic remote-traffic trap for the batched panels.)
// Zero-filling is observationally identical either way, so this is purely
// a placement change; NKRYLOV_FIRST_TOUCH=0 restores the serial memset.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <string_view>

#include "base/backend.hpp"
#include "base/env.hpp"
#include "base/panel.hpp"

namespace nk {

namespace workspace_detail {

/// Parallel first-touch zero of [p, p+bytes): contiguous per-thread slices
/// under schedule(static), exactly the slice shape the BLAS/SpMM kernels'
/// `parallel for schedule(static)` sweeps assign.  Tiny or env-disabled
/// fills fall back to one memset.
inline void first_touch_zero(std::byte* p, std::size_t bytes, Backend be) {
  // Checked flag parse: a malformed NKRYLOV_FIRST_TOUCH warns once naming
  // the variable and value, then keeps the default (on) — it no longer
  // silently counts as truthy.
  static const bool enabled = env_flag("NKRYLOV_FIRST_TOUCH", true);
  constexpr std::size_t kChunk = 1 << 16;  // per-slice granule: page-multiple
  // First-touch placement is a HOST-backend property: its per-thread slices
  // mirror the OpenMP static schedule of the host kernels.  The serial
  // backend streams every buffer from one thread, so its slabs take the
  // plain memset (placement only — the zero fill is identical).
  if (be != Backend::kHost || !enabled || bytes < 2 * kChunk) {
    std::memset(p, 0, bytes);
    return;
  }
  const std::ptrdiff_t nchunks = static_cast<std::ptrdiff_t>((bytes + kChunk - 1) / kChunk);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < nchunks; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * kChunk;
    std::memset(p + off, 0, std::min(kChunk, bytes - off));
  }
}

}  // namespace workspace_detail

class SolverWorkspace {
 public:
  /// Slab alignment: one cache line.  The SELL/SpMM SIMD kernels and the
  /// F16C bulk converters read solver buffers with 32-byte vector loads;
  /// default operator-new only guarantees 16, so slabs carry their own
  /// (over-)alignment — which also keeps hot per-column panels from
  /// straddling cache lines at their starts.
  static constexpr std::size_t kSlabAlign = 64;

  /// Typed view of the slab registered under `key`, grown to hold at least
  /// `n` elements.  Newly grown bytes are zero; reused bytes keep whatever
  /// the previous user left (solvers initialize their buffers in setup()).
  template <class T>
  std::span<T> get(std::string_view key, std::size_t n) {
    static_assert(alignof(T) <= kSlabAlign, "slab alignment covers cache-line-aligned types");
    auto [it, inserted] = slabs_.try_emplace(std::string(key));
    Slab& slab = it->second;
    const std::size_t need = n * sizeof(T);
    if (slab.size < need) {
      SlabPtr grown(static_cast<std::byte*>(
          ::operator new(need, std::align_val_t{kSlabAlign})));
      if (slab.size > 0) std::memcpy(grown.get(), slab.mem.get(), slab.size);
      workspace_detail::first_touch_zero(grown.get() + slab.size, need - slab.size,
                                         backend_);
      slab.mem = std::move(grown);
      slab.size = need;
      ++allocations_;
    }
    return {reinterpret_cast<T*>(slab.mem.get()), n};
  }

  /// Number of slab growths since construction/release; flat across two
  /// identical setup()+solve() rounds ⇒ the second round allocated nothing.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

  /// Distinct keys currently held.
  [[nodiscard]] std::size_t buffers() const { return slabs_.size(); }

  /// Total bytes of slab capacity (the memory the setup phase committed).
  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = 0;
    for (const auto& [k, slab] : slabs_) b += slab.size;
    return b;
  }

  /// Drop every slab (spans handed out become dangling).
  void release() {
    slabs_.clear();
    allocations_ = 0;
  }

  /// Default layout for the batched panels solvers carve out of this
  /// workspace.  Solvers whose spec leaves the layout unset inherit this;
  /// an explicit `;layout=` spec option overrides per solver.
  [[nodiscard]] PanelLayout panel_layout() const { return panel_layout_; }
  void set_panel_layout(PanelLayout l) { panel_layout_ = l; }

  /// Execution-space backend the owning pipeline was built for.  Solvers
  /// and operators built over this workspace read it in setup(); Session
  /// resolves it (spec > NKRYLOV_BACKEND > host) before minting the engine.
  /// Also a slab property: first-touch NUMA placement applies to host
  /// slabs only (serial slabs take a plain memset).  Defaults to host so
  /// legacy/direct construction paths stay byte-identical.
  [[nodiscard]] Backend backend() const { return backend_; }
  void set_backend(Backend be) { backend_ = be; }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t{kSlabAlign});
    }
  };
  using SlabPtr = std::unique_ptr<std::byte, AlignedDelete>;
  struct Slab {
    SlabPtr mem;
    std::size_t size = 0;
  };

  // std::map: stable iteration for bytes(), no rehash cost on lookup-heavy
  // use, and key count is small (a handful of buffers per solver level).
  std::map<std::string, Slab, std::less<>> slabs_;
  std::uint64_t allocations_ = 0;
  PanelLayout panel_layout_ = PanelLayout::kRowMajor;
  Backend backend_ = Backend::kHost;
};

}  // namespace nk
