// Aligned-column table printing + CSV export for the benchmark harness.
// Every bench binary emits (i) a human-readable table mirroring the paper's
// figure/table, and (ii) optionally a CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nk {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatting.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_sci(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;

  /// Render as CSV to `os`.
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file path; returns false (and warns) on failure.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("=== title ===") used between bench phases.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace nk
