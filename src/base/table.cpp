#include "base/table.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace nk {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > w[c]) w[c] = row[c].size();

  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(w[c])) << row[c];
    os << "\n";
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "warning: cannot write CSV to " << path << "\n";
    return false;
  }
  print_csv(f);
  return true;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace nk
