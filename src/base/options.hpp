// Minimal command-line option parsing shared by benches and examples.
//
// Syntax: --key=value or --key value or bare --flag (boolean true).
// Unknown keys are kept so harnesses can pass through google-benchmark
// flags; `Options::check_unknown` can be used to reject typos instead.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nk {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  /// True if --key was present at all.
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] std::int64_t get_int64(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of ints, e.g. --sizes=16,32,64.
  [[nodiscard]] std::vector<int> get_int_list(const std::string& key,
                                              const std::vector<int>& def) const;
  /// Comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                    const std::vector<double>& def) const;
  /// Comma-separated list of strings.
  [[nodiscard]] std::vector<std::string> get_list(const std::string& key,
                                                  const std::vector<std::string>& def) const;

  /// Positional (non --key) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Register a documented key (for --help output).
  void describe(const std::string& key, const std::string& help);

  /// Render a help string from registered descriptions.
  [[nodiscard]] std::string help(const std::string& program) const;

  /// True if --help/-h given.
  [[nodiscard]] bool wants_help() const { return has("help") || has("h"); }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> descriptions_;
};

}  // namespace nk
