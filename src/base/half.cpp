#include "base/half.hpp"

#include <stdexcept>

namespace nk {

const char* prec_name(Prec p) noexcept {
  switch (p) {
    case Prec::FP64: return "fp64";
    case Prec::FP32: return "fp32";
    case Prec::FP16: return "fp16";
  }
  return "?";
}

Prec parse_prec(const std::string& s) {
  if (s == "fp64" || s == "double" || s == "64") return Prec::FP64;
  if (s == "fp32" || s == "single" || s == "float" || s == "32") return Prec::FP32;
  if (s == "fp16" || s == "half" || s == "16") return Prec::FP16;
  throw std::invalid_argument("unknown precision: '" + s + "' (expected fp64|fp32|fp16)");
}

double unit_roundoff(Prec p) noexcept {
  switch (p) {
    case Prec::FP64: return 0.5 * fp_limits<double>::eps;
    case Prec::FP32: return 0.5 * static_cast<double>(fp_limits<float>::eps);
    case Prec::FP16: return 0.5 * static_cast<double>(fp_limits<half>::eps);
  }
  return 0.0;
}

}  // namespace nk
