#include "base/env.hpp"

#include <sstream>

#include "base/simd_fp16.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nk {

int num_threads() {
#ifdef _OPENMP
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
#else
  return 1;
#endif
}

bool has_f16c() {
#if defined(__F16C__)
  return true;
#else
  return false;
#endif
}

bool has_avx512fp16_kernels() { return simd_fp16::compiled(); }

bool avx512fp16_dispatched() { return simd_fp16::enabled(); }

std::string env_summary() {
  std::ostringstream os;
  os << "threads=" << num_threads();
#ifdef _OPENMP
  os << " openmp=" << _OPENMP;
#else
  os << " openmp=off";
#endif
  os << " f16c=" << (has_f16c() ? "yes" : "no");
  // Truth-in-reporting: the field describes the state of the native
  // AVX-512 FP16 KERNELS, not bare CPUID.  "dispatch" = kernel bodies
  // compiled in, CPU supports them, and NKRYLOV_AVX512FP16 opted in — the
  // fp16 BLAS-1 calls actually run them.  "compiled" = bodies present but
  // not dispatched (no CPU support or opt-in unset); "no" = this build
  // carries no native fp16 kernel paths at all.
  os << " avx512fp16=";
  if (simd_fp16::enabled()) os << "dispatch";
  else if (simd_fp16::compiled()) os << "compiled";
  else os << "no";
  // Which implementation the fp16 BLAS-1/reduction kernels actually use.
  os << " fp16-kernels=";
  if (simd_fp16::enabled()) os << "avx512fp16";
  else os << (has_f16c() ? "f16c" : "scalar");
#ifdef NDEBUG
  os << " build=release";
#else
  os << " build=debug";
#endif
  return os.str();
}

}  // namespace nk
