#include "base/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>

#include "base/backend.hpp"
#include "base/simd_fp16.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nk {

namespace {

/// One warning per variable per process, however many times the knob is
/// read (call sites additionally cache the parsed value in local statics,
/// but the direct-parse test path calls these repeatedly).
void warn_once(const char* var, const std::string& msg) {
  static std::mutex mu;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mu);
  if (warned.insert(var).second) std::cerr << "nkrylov: " << msg << "\n";
}

}  // namespace

long env_long(const char* var, long def, long min_value) {
  const char* s = std::getenv(var);
  if (s == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    warn_once(var, std::string(var) + "='" + s + "' is not an integer; using default " +
                       std::to_string(def));
    return def;
  }
  if (v < min_value) {
    warn_once(var, std::string(var) + "=" + std::to_string(v) + " is below the minimum " +
                       std::to_string(min_value) + "; using default " + std::to_string(def));
    return def;
  }
  return v;
}

bool env_flag(const char* var, bool def) {
  const char* s = std::getenv(var);
  if (s == nullptr) return def;
  const std::string_view v(s);
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  warn_once(var, std::string(var) + "='" + s + "' is not a boolean (0|off|false|no / " +
                     "1|on|true|yes); using default " + (def ? "on" : "off"));
  return def;
}

std::string env_str(const char* var, const std::string& def) {
  const char* s = std::getenv(var);
  return s == nullptr ? def : std::string(s);
}

long tune_probes_env() { return env_long("NKRYLOV_TUNE_PROBES", 4, 0); }

std::string tune_db_env() { return env_str("NKRYLOV_TUNE_DB", ""); }

void require_backend_env_cli() {
  const char* s = std::getenv("NKRYLOV_BACKEND");
  if (s == nullptr || parse_backend(s).has_value()) return;
  std::cerr << "error: NKRYLOV_BACKEND='" << s
            << "' is not a known backend (known: " << backend_names() << ")\n";
  std::exit(2);
}

int num_threads() {
#ifdef _OPENMP
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
#else
  return 1;
#endif
}

bool has_f16c() {
#if defined(__F16C__)
  return true;
#else
  return false;
#endif
}

bool has_avx512fp16_kernels() { return simd_fp16::compiled(); }

bool avx512fp16_dispatched() { return simd_fp16::enabled(); }

std::string env_summary() {
  std::ostringstream os;
  os << "threads=" << num_threads();
#ifdef _OPENMP
  os << " openmp=" << _OPENMP;
#else
  os << " openmp=off";
#endif
  os << " f16c=" << (has_f16c() ? "yes" : "no");
  // Truth-in-reporting: the field describes the state of the native
  // AVX-512 FP16 KERNELS, not bare CPUID.  "dispatch" = kernel bodies
  // compiled in, CPU supports them, and NKRYLOV_AVX512FP16 opted in — the
  // fp16 BLAS-1 calls actually run them.  "compiled" = bodies present but
  // not dispatched (no CPU support or opt-in unset); "no" = this build
  // carries no native fp16 kernel paths at all.
  os << " avx512fp16=";
  if (simd_fp16::enabled()) os << "dispatch";
  else if (simd_fp16::compiled()) os << "compiled";
  else os << "no";
  // Which implementation the fp16 BLAS-1/reduction kernels actually use.
  os << " fp16-kernels=";
  if (simd_fp16::enabled()) os << "avx512fp16";
  else os << (has_f16c() ? "f16c" : "scalar");
  // Requested-vs-active backend: the active (canonical) name first; the
  // requested spelling in parentheses whenever it differs — an alias
  // ("omp") or an invalid value that Session will refuse to build with.
  os << " backend=";
  const char* req = std::getenv("NKRYLOV_BACKEND");
  if (req == nullptr) {
    os << backend_name(Backend::kHost);
  } else {
    const auto be = parse_backend(req);
    if (!be.has_value()) os << "invalid(requested=" << req << ")";
    else if (std::string_view(req) != backend_name(*be))
      os << backend_name(*be) << "(requested=" << req << ")";
    else os << backend_name(*be);
  }
  // Autotuner knobs, through the same checked parsers the tuner itself
  // uses — the summary reports what WILL happen, not the raw env text
  // (a malformed NKRYLOV_TUNE_PROBES shows the default it fell back to).
  os << " tune-probes=" << tune_probes_env();
  const std::string db = tune_db_env();
  os << " tune-db=" << (db.empty() ? "none" : db);
#ifdef NDEBUG
  os << " build=release";
#else
  os << " build=debug";
#endif
  return os.str();
}

}  // namespace nk
