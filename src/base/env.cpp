#include "base/env.hpp"

#include <sstream>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nk {

int num_threads() {
#ifdef _OPENMP
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
#else
  return 1;
#endif
}

bool has_f16c() {
#if defined(__F16C__)
  return true;
#else
  return false;
#endif
}

std::string env_summary() {
  std::ostringstream os;
  os << "threads=" << num_threads();
#ifdef _OPENMP
  os << " openmp=" << _OPENMP;
#else
  os << " openmp=off";
#endif
  os << " f16c=" << (has_f16c() ? "yes" : "no");
#if defined(__AVX512FP16__)
  os << " avx512fp16=yes";
#else
  os << " avx512fp16=no";
#endif
#ifdef NDEBUG
  os << " build=release";
#else
  os << " build=debug";
#endif
  return os.str();
}

}  // namespace nk
