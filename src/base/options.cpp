#include "base/options.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nk {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

// Numeric flag parsing: every bench/example funnels its CLI through these,
// so a malformed value must produce a one-line diagnostic naming the flag
// and exit(2) — never an uncaught std::invalid_argument / std::out_of_range
// terminate() (which looks like a crash and hides the offending flag).
[[noreturn]] void die_bad_value(const std::string& key, const std::string& value,
                                const char* why) {
  std::cerr << "error: " << why << " value '" << value << "' for --" << key << "\n";
  std::exit(2);
}

long long parse_int_checked(const std::string& key, const std::string& value,
                            long long lo, long long hi) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(value, &pos);
  } catch (const std::invalid_argument&) {
    die_bad_value(key, value, "invalid integer");
  } catch (const std::out_of_range&) {
    die_bad_value(key, value, "out-of-range integer");
  }
  if (pos != value.size()) die_bad_value(key, value, "trailing garbage in integer");
  if (v < lo || v > hi) die_bad_value(key, value, "out-of-range integer");
  return v;
}

double parse_double_checked(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::invalid_argument&) {
    die_bad_value(key, value, "invalid number");
  } catch (const std::out_of_range&) {
    die_bad_value(key, value, "out-of-range number");
  }
  if (pos != value.size()) die_bad_value(key, value, "trailing garbage in number");
  return v;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "true";
      }
    } else if (arg.rfind('-', 0) == 0 && arg.size() > 1 &&
               // unsigned-char cast: plain isdigit(char) is UB for negative
               // values, which any non-ASCII byte (UTF-8 filename) produces.
               !std::isdigit(static_cast<unsigned char>(arg[1]))) {
      kv_[arg.substr(1)] = "true";
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int Options::get_int(const std::string& key, int def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return static_cast<int>(parse_int_checked(key, it->second,
                                            std::numeric_limits<int>::min(),
                                            std::numeric_limits<int>::max()));
}

std::int64_t Options::get_int64(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return parse_int_checked(key, it->second, std::numeric_limits<std::int64_t>::min(),
                           std::numeric_limits<std::int64_t>::max());
}

double Options::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return parse_double_checked(key, it->second);
}

bool Options::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<int> Options::get_int_list(const std::string& key, const std::vector<int>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<int> out;
  for (const auto& tok : split_csv(it->second))
    if (!tok.empty())
      out.push_back(static_cast<int>(parse_int_checked(key, tok,
                                                       std::numeric_limits<int>::min(),
                                                       std::numeric_limits<int>::max())));
  return out;
}

std::vector<double> Options::get_double_list(const std::string& key,
                                             const std::vector<double>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<double> out;
  for (const auto& tok : split_csv(it->second))
    if (!tok.empty()) out.push_back(parse_double_checked(key, tok));
  return out;
}

std::vector<std::string> Options::get_list(const std::string& key,
                                           const std::vector<std::string>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<std::string> out;
  for (auto& tok : split_csv(it->second))
    if (!tok.empty()) out.push_back(tok);
  return out;
}

void Options::describe(const std::string& key, const std::string& help) {
  descriptions_.emplace_back(key, help);
}

std::string Options::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--key=value ...]\n";
  for (const auto& [k, h] : descriptions_) os << "  --" << k << "\t" << h << "\n";
  return os.str();
}

}  // namespace nk
