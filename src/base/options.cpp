#include "base/options.hpp"

#include <sstream>
#include <stdexcept>

namespace nk {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "true";
      }
    } else if (arg.rfind('-', 0) == 0 && arg.size() > 1 && !isdigit(arg[1])) {
      kv_[arg.substr(1)] = "true";
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int Options::get_int(const std::string& key, int def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoi(it->second);
}

std::int64_t Options::get_int64(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoll(it->second);
}

double Options::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<int> Options::get_int_list(const std::string& key, const std::vector<int>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<int> out;
  for (const auto& tok : split_csv(it->second))
    if (!tok.empty()) out.push_back(std::stoi(tok));
  return out;
}

std::vector<double> Options::get_double_list(const std::string& key,
                                             const std::vector<double>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<double> out;
  for (const auto& tok : split_csv(it->second))
    if (!tok.empty()) out.push_back(std::stod(tok));
  return out;
}

std::vector<std::string> Options::get_list(const std::string& key,
                                           const std::vector<std::string>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<std::string> out;
  for (auto& tok : split_csv(it->second))
    if (!tok.empty()) out.push_back(tok);
  return out;
}

void Options::describe(const std::string& key, const std::string& help) {
  descriptions_.emplace_back(key, help);
}

std::string Options::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--key=value ...]\n";
  for (const auto& [k, h] : descriptions_) os << "  --" << k << "\t" << h << "\n";
  return os.str();
}

}  // namespace nk
