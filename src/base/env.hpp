// Runtime environment reporting: thread count, fp16 capability, build flags.
// Benches print this header so results are interpretable later.
#pragma once

#include <string>

namespace nk {

/// Number of OpenMP threads the kernels will use (1 in serial builds).
int num_threads();

/// One-line description of the runtime (threads, fp16 path, build type).
std::string env_summary();

/// True when the build carries a hardware fp16 conversion path (F16C) —
/// informational only; _Float16 is always functionally available.
bool has_f16c();

/// True when this build carries the native AVX-512 FP16 kernel bodies
/// (compiled with -mavx512fp16; see base/simd_fp16.hpp).
bool has_avx512fp16_kernels();

/// True when those kernels are actually dispatched at runtime: compiled in,
/// CPU support present, and NKRYLOV_AVX512FP16 opted in.  This — not bare
/// CPUID — is what env_summary()'s avx512fp16= field reports.
bool avx512fp16_dispatched();

}  // namespace nk
