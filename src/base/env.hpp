// Runtime environment reporting: thread count, fp16 capability, build flags.
// Benches print this header so results are interpretable later.
#pragma once

#include <string>

namespace nk {

/// Number of OpenMP threads the kernels will use (1 in serial builds).
int num_threads();

/// One-line description of the runtime (threads, fp16 path, build type).
std::string env_summary();

/// True when the build carries a hardware fp16 conversion path (F16C) —
/// informational only; _Float16 is always functionally available.
bool has_f16c();

}  // namespace nk
