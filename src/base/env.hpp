// Runtime environment reporting and checked environment-variable parsing:
// thread count, fp16 capability, build flags.  Benches print the summary
// header so results are interpretable later.
#pragma once

#include <string>

namespace nk {

// ---------------------------------------------------------------------------
// Checked env-knob parsers — the Options checked-parse policy applied to
// getenv sites.  A knob that is SET but malformed used to be silently
// truncated ("NKRYLOV_PAR_THRESHOLD=4096x" parsed as 4096) or silently
// treated as truthy; now the whole value must parse, and a malformed value
// warns ONCE on stderr naming the variable and the offending value before
// falling back to the default.  Unset variables return the default without
// any diagnostics.
// ---------------------------------------------------------------------------

/// Integer knob: full-string strict parse (no trailing garbage, no empty
/// value), rejected when below `min_value`.  Malformed/out-of-range values
/// warn once per variable and return `def`.
long env_long(const char* var, long def, long min_value);

/// Boolean knob: "0"/"off"/"false"/"no" are false, "1"/"on"/"true"/"yes"
/// are true (lower case, matching the spellings the knobs documented).
/// Anything else — including an empty value — warns once per variable and
/// returns `def`.
bool env_flag(const char* var, bool def);

/// String knob: the raw value when set (even if empty), `def` otherwise.
/// Deliberately validation-free — knobs whose bad values must FAIL rather
/// than warn-and-default (NKRYLOV_BACKEND: exit(2) in CLI front-ends,
/// kInvalidInput through the library) validate at the use site, where the
/// failure policy lives.
std::string env_str(const char* var, const std::string& def);

/// CLI front door for NKRYLOV_BACKEND: when the variable is set to an
/// unknown backend name, print one line naming the variable, the value,
/// and the known backends, then exit(2) — a daemon or bench must not come
/// up on a silently different backend than the operator asked for.  Unset
/// or valid values return normally.  (Library callers get the same
/// strictness as SolveStatus::kInvalidInput through Session instead.)
void require_backend_env_cli();

/// NKRYLOV_TUNE_PROBES — the autotuner's probe budget: how many shortlist
/// candidates get a capped trial solve before the winner is chosen
/// (core/tune/).  0 = model-only selection (no probes at all).  Checked
/// parse via env_long: malformed or negative values warn once and fall
/// back to the default (4).
long tune_probes_env();

/// NKRYLOV_TUNE_DB — path of the autotuner's persistent perf-DB file
/// (core/tune/perf_db.hpp).  Empty/unset = in-memory only: the tuner never
/// writes a file the operator did not ask for.
std::string tune_db_env();

/// Number of OpenMP threads the kernels will use (1 in serial builds).
int num_threads();

/// One-line description of the runtime (threads, fp16 path, build type).
std::string env_summary();

/// True when the build carries a hardware fp16 conversion path (F16C) —
/// informational only; _Float16 is always functionally available.
bool has_f16c();

/// True when this build carries the native AVX-512 FP16 kernel bodies
/// (compiled with -mavx512fp16; see base/simd_fp16.hpp).
bool has_avx512fp16_kernels();

/// True when those kernels are actually dispatched at runtime: compiled in,
/// CPU support present, and NKRYLOV_AVX512FP16 opted in.  This — not bare
/// CPUID — is what env_summary()'s avx512fp16= field reports.
bool avx512fp16_dispatched();

}  // namespace nk
