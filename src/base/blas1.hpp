// Mixed-precision BLAS-1 kernels.
//
// All kernels are OpenMP-parallel over contiguous index ranges (the paper
// multi-threads every vector operation row-wise).  Reductions over fp16 data
// accumulate in fp32 via nk::acc_t; mixed-type operations compute in the
// wider of the input types (nk::promote_t), matching the paper's rule that
// higher-precision instructions are used when inputs differ in precision.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "base/half.hpp"

namespace nk {

using index_t = std::int32_t;  // the paper stores indices as 32-bit integers

namespace blas {

/// y[i] = x[i] converted to the destination type.
template <class Src, class Dst>
void convert(std::span<const Src> x, std::span<Dst> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = static_cast<Dst>(x[i]);
}

/// y = x (same type fast path).
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = x[i];
}

/// x = 0.
template <class T>
void set_zero(std::span<T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) x[i] = static_cast<T>(0);
}

/// x *= alpha.
template <class T, class S>
void scal(S alpha, std::span<T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const auto a = static_cast<promote_t<T, S>>(alpha);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    x[i] = static_cast<T>(a * static_cast<promote_t<T, S>>(x[i]));
}

/// y += alpha * x   (classic axpy; computes in the promoted type).
template <class TX, class TY, class S>
void axpy(S alpha, std::span<const TX> x, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(static_cast<W>(y[i]) + a * static_cast<W>(x[i]));
}

/// y = alpha * x + beta * y.
template <class TX, class TY, class S>
void axpby(S alpha, std::span<const TX> x, S beta, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha), b = static_cast<W>(beta);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(a * static_cast<W>(x[i]) + b * static_cast<W>(y[i]));
}

/// z = x - y (elementwise), computed in the promoted type.
template <class TX, class TY, class TZ>
void sub(std::span<const TX> x, std::span<const TY> y, std::span<TZ> z) {
  using W = promote_t<TX, TY>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    z[i] = static_cast<TZ>(static_cast<W>(x[i]) - static_cast<W>(y[i]));
}

/// Dot product; accumulates in acc_t of the promoted input type.
/// Half inputs take a four-way unrolled path: scalar half→float conversion
/// (`vcvtsh2ss`) merges into its destination register, and a single
/// accumulator would serialize the loop on that false dependency.
template <class TX, class TY>
auto dot(std::span<const TX> x, std::span<const TY> y) {
  using W = acc_t<promote_t<TX, TY>>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if constexpr (sizeof(TX) == 2 || sizeof(TY) == 2) {
    W s0{0}, s1{0}, s2{0}, s3{0};
#pragma omp parallel for schedule(static) reduction(+ : s0, s1, s2, s3)
    for (std::ptrdiff_t i = 0; i < n - 3; i += 4) {
      s0 += static_cast<W>(x[i]) * static_cast<W>(y[i]);
      s1 += static_cast<W>(x[i + 1]) * static_cast<W>(y[i + 1]);
      s2 += static_cast<W>(x[i + 2]) * static_cast<W>(y[i + 2]);
      s3 += static_cast<W>(x[i + 3]) * static_cast<W>(y[i + 3]);
    }
    for (std::ptrdiff_t i = n - (n % 4); i < n; ++i)
      s0 += static_cast<W>(x[i]) * static_cast<W>(y[i]);
    return (s0 + s1) + (s2 + s3);
  } else {
    W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s)
    for (std::ptrdiff_t i = 0; i < n; ++i)
      s += static_cast<W>(x[i]) * static_cast<W>(y[i]);
    return s;
  }
}

/// Euclidean norm; accumulates in acc_t<T> (half → float; same unrolling
/// rationale as dot()).
template <class T>
auto nrm2(std::span<const T> x) {
  using W = acc_t<T>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if constexpr (sizeof(T) == 2) {
    W s0{0}, s1{0}, s2{0}, s3{0};
#pragma omp parallel for schedule(static) reduction(+ : s0, s1, s2, s3)
    for (std::ptrdiff_t i = 0; i < n - 3; i += 4) {
      const W v0 = static_cast<W>(x[i]), v1 = static_cast<W>(x[i + 1]);
      const W v2 = static_cast<W>(x[i + 2]), v3 = static_cast<W>(x[i + 3]);
      s0 += v0 * v0;
      s1 += v1 * v1;
      s2 += v2 * v2;
      s3 += v3 * v3;
    }
    for (std::ptrdiff_t i = n - (n % 4); i < n; ++i) {
      const W v = static_cast<W>(x[i]);
      s0 += v * v;
    }
    return static_cast<W>(std::sqrt(static_cast<double>((s0 + s1) + (s2 + s3))));
  } else {
    W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const W v = static_cast<W>(x[i]);
      s += v * v;
    }
    return static_cast<W>(std::sqrt(static_cast<double>(s)));
  }
}

/// Infinity norm (always returned as double; used for diagnostics).
template <class T>
double nrm_inf(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double m = 0.0;
#pragma omp parallel for schedule(static) reduction(max : m)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const double v = std::fabs(static_cast<double>(x[i]));
    if (v > m) m = v;
  }
  return m;
}

/// Count of non-finite entries (inf/nan) — the fp16 overflow diagnostic.
template <class T>
std::size_t count_nonfinite(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  std::size_t c = 0;
#pragma omp parallel for schedule(static) reduction(+ : c)
  for (std::ptrdiff_t i = 0; i < n; ++i)
    if (!std::isfinite(static_cast<double>(x[i]))) ++c;
  return c;
}

}  // namespace blas

/// Convenience: convert a whole vector to another precision.
template <class Dst, class Src>
std::vector<Dst> converted(const std::vector<Src>& x) {
  std::vector<Dst> y(x.size());
  blas::convert<Src, Dst>(std::span<const Src>(x), std::span<Dst>(y));
  return y;
}

}  // namespace nk
