// Mixed-precision BLAS-1 kernels.
//
// All kernels are OpenMP-parallel over contiguous index ranges (the paper
// multi-threads every vector operation row-wise).  Reductions over fp16 data
// accumulate in fp32 via nk::acc_t; mixed-type operations compute in the
// wider of the input types (nk::promote_t), matching the paper's rule that
// higher-precision instructions are used when inputs differ in precision.
//
// Every parallel loop carries an `if(n > parallel_threshold())` clause: the
// inner levels of F3R operate on short vectors millions of times per solve,
// and an OpenMP fork-join on a vector that fits in L1 costs more than the
// arithmetic it distributes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <span>
#include <vector>

#include "base/env.hpp"
#include "base/half.hpp"
#include "base/simd_fp16.hpp"

namespace nk {

using index_t = std::int32_t;  // the paper stores indices as 32-bit integers

namespace blas {

/// Minimum element count before a kernel opens an OpenMP parallel region.
/// Override with the environment variable NKRYLOV_PAR_THRESHOLD (elements;
/// 0 = always parallel).  Malformed values ("4096x", negatives) warn once
/// and keep the default — a set knob never silently half-applies.
inline std::ptrdiff_t parallel_threshold() {
  static const std::ptrdiff_t t =
      static_cast<std::ptrdiff_t>(env_long("NKRYLOV_PAR_THRESHOLD", 4096, 0));
  return t;
}

/// Greedy column-group decomposition shared by the batched kernels
/// (spmm, ilu_solve_many, dot_cols): the largest pinned compile-time tier
/// (`max_tier`, then 8, then 4) that fits the remaining columns, dynamic
/// only for a < 4 tail.  An arbitrary width — e.g. a compacted active set —
/// therefore runs almost entirely in the fully-unrolled kernels.  Grouping
/// never changes per-column results (columns are independent).
constexpr int greedy_group(int remaining, int max_tier) {
  if (remaining >= max_tier) return max_tier;
  if (remaining >= 8) return 8;
  if (remaining >= 4) return 4;
  return remaining;
}

/// Chunk length for the tiled fp16 kernels below (fits L1 alongside the
/// streamed operand).
inline constexpr std::ptrdiff_t kHalfChunk = 1024;

/// Present `len` elements of `src` in the accumulator precision W, using
/// `buf` as scratch when a conversion is needed.  fp16 sources convert via
/// the vectorized F16C helper — half→float is conversion-exact, so working
/// on the converted chunk is bit-identical to converting inside the
/// arithmetic loop (which GCC 12 scalarizes into a serial vcvtsh2ss chain;
/// see half.hpp).
template <class T, class W>
inline const W* to_acc_chunk(const T* src, W* buf, std::ptrdiff_t len) {
  if constexpr (std::is_same_v<T, W>) {
    return src;
  } else if constexpr (std::is_same_v<T, half> && std::is_same_v<W, float>) {
    half_to_float_n(src, buf, len);
    return buf;
  } else {
    for (std::ptrdiff_t i = 0; i < len; ++i) buf[i] = static_cast<W>(src[i]);
    return buf;
  }
}

/// y[i] = x[i] converted to the destination type.
template <class Src, class Dst>
void convert(std::span<const Src> x, std::span<Dst> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if constexpr ((std::is_same_v<Src, half> && std::is_same_v<Dst, float>) ||
                (std::is_same_v<Src, float> && std::is_same_v<Dst, half>)) {
    // The precision-bridge hot path (every F3R inner-level invocation):
    // vectorized F16C conversion, chunked so it still parallelizes.
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk) {
      const std::ptrdiff_t len = std::min(t0 + kHalfChunk, n) - t0;
      if constexpr (std::is_same_v<Src, half>)
        half_to_float_n(x.data() + t0, y.data() + t0, len);
      else
        float_to_half_n(x.data() + t0, y.data() + t0, len);
    }
  } else {
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = static_cast<Dst>(x[i]);
  }
}

/// y = x (same type fast path).
template <class T>
void copy(std::span<const T> x, std::span<T> y) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = x[i];
}

/// x = 0.
template <class T>
void set_zero(std::span<T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i) x[i] = static_cast<T>(0);
}

/// x *= alpha.
template <class T, class S>
void scal(S alpha, std::span<T> x) {
  using W = promote_t<T, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const auto a = static_cast<W>(alpha);
  if constexpr (std::is_same_v<T, half> && std::is_same_v<W, float>) {
    T* __restrict xp = x.data();
    if (simd_fp16::enabled()) {
      // Native binary16 multiply, 32 lanes per instruction (tolerance tier
      // vs the F16C reference documented in simd_fp16.hpp).
      const half ah = static_cast<half>(a);
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
      for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk)
        simd_fp16::scal_n(ah, xp + t0, std::min(kHalfChunk, n - t0));
      return;
    }
    // Same per-element op — x[i] = half(a·float(x[i])) — via the
    // vectorized F16C conversions (GCC scalarizes _Float16 loops).
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk) {
      const std::ptrdiff_t len = std::min(t0 + kHalfChunk, n) - t0;
      float buf[kHalfChunk];
      half_to_float_n(xp + t0, buf, len);
      for (std::ptrdiff_t i = 0; i < len; ++i) buf[i] *= a;
      float_to_half_n(buf, xp + t0, len);
    }
  } else {
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i)
      x[i] = static_cast<T>(a * static_cast<W>(x[i]));
  }
}

/// y += alpha * x   (classic axpy; computes in the promoted type).
template <class TX, class TY, class S>
void axpy(S alpha, std::span<const TX> x, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha);
  if constexpr ((std::is_same_v<TX, half> || std::is_same_v<TY, half>) &&
                std::is_same_v<W, float>) {
    const TX* __restrict xp = x.data();
    TY* __restrict yp = y.data();
    if constexpr (std::is_same_v<TX, half> && std::is_same_v<TY, half>) {
      if (simd_fp16::enabled()) {
        // Native fused binary16 multiply-add, 32 lanes per instruction
        // (tolerance tier vs the F16C reference: see simd_fp16.hpp).
        const half ah = static_cast<half>(a);
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
        for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk)
          simd_fp16::axpy_n(ah, xp + t0, yp + t0, std::min(kHalfChunk, n - t0));
        return;
      }
    }
    // Same per-element op via chunked F16C conversion (the innermost
    // Richardson update x += ω·r runs entirely on fp16 vectors).
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk) {
      const std::ptrdiff_t len = std::min(t0 + kHalfChunk, n) - t0;
      float xb[kHalfChunk], yb[kHalfChunk];
      const float* xc = to_acc_chunk(xp + t0, xb, len);
      const float* yc = to_acc_chunk(yp + t0, yb, len);
      float out[kHalfChunk];
      for (std::ptrdiff_t i = 0; i < len; ++i) out[i] = yc[i] + a * xc[i];
      if constexpr (std::is_same_v<TY, half>) {
        float_to_half_n(out, yp + t0, len);
      } else {
        for (std::ptrdiff_t i = 0; i < len; ++i) yp[t0 + i] = static_cast<TY>(out[i]);
      }
    }
  } else {
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i)
      y[i] = static_cast<TY>(static_cast<W>(y[i]) + a * static_cast<W>(x[i]));
  }
}

/// y = alpha * x + beta * y.
template <class TX, class TY, class S>
void axpby(S alpha, std::span<const TX> x, S beta, std::span<TY> y) {
  using W = promote_t<promote_t<TX, TY>, S>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  const W a = static_cast<W>(alpha), b = static_cast<W>(beta);
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[i] = static_cast<TY>(a * static_cast<W>(x[i]) + b * static_cast<W>(y[i]));
}

/// z = x - y (elementwise), computed in the promoted type.
template <class TX, class TY, class TZ>
void sub(std::span<const TX> x, std::span<const TY> y, std::span<TZ> z) {
  using W = promote_t<TX, TY>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i)
    z[i] = static_cast<TZ>(static_cast<W>(x[i]) - static_cast<W>(y[i]));
}

/// Dot product; accumulates in acc_t of the promoted input type.
/// Half inputs take a four-way unrolled path: scalar half→float conversion
/// (`vcvtsh2ss`) merges into its destination register, and a single
/// accumulator would serialize the loop on that false dependency.
template <class TX, class TY>
auto dot(std::span<const TX> x, std::span<const TY> y) {
  using W = acc_t<promote_t<TX, TY>>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if constexpr (sizeof(TX) == 2 || sizeof(TY) == 2) {
    if constexpr (std::is_same_v<TX, half> && std::is_same_v<TY, half>) {
      if (simd_fp16::enabled()) {
        // ZMM-width conversion + fp32 FMA; the lane-reassociated sum is a
        // documented tolerance tier (see simd_fp16.hpp), like any change
        // of thread count on the reference reduction below.
        W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s) if (n > parallel_threshold())
        for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk)
          s += simd_fp16::dot_n(x.data() + t0, y.data() + t0,
                                std::min(kHalfChunk, n - t0));
        return s;
      }
    }
    W s0{0}, s1{0}, s2{0}, s3{0};
#pragma omp parallel for schedule(static) reduction(+ : s0, s1, s2, s3) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n - 3; i += 4) {
      s0 += static_cast<W>(x[i]) * static_cast<W>(y[i]);
      s1 += static_cast<W>(x[i + 1]) * static_cast<W>(y[i + 1]);
      s2 += static_cast<W>(x[i + 2]) * static_cast<W>(y[i + 2]);
      s3 += static_cast<W>(x[i + 3]) * static_cast<W>(y[i + 3]);
    }
    for (std::ptrdiff_t i = n - (n % 4); i < n; ++i)
      s0 += static_cast<W>(x[i]) * static_cast<W>(y[i]);
    return (s0 + s1) + (s2 + s3);
  } else {
    W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i)
      s += static_cast<W>(x[i]) * static_cast<W>(y[i]);
    return s;
  }
}

/// Euclidean norm; accumulates in acc_t<T> (half → float; same unrolling
/// rationale as dot()).
template <class T>
auto nrm2(std::span<const T> x) {
  using W = acc_t<T>;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if constexpr (sizeof(T) == 2) {
    if (simd_fp16::enabled()) {
      // Sum of squares through the native-width dot (same tier as dot()).
      W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s) if (n > parallel_threshold())
      for (std::ptrdiff_t t0 = 0; t0 < n; t0 += kHalfChunk)
        s += simd_fp16::dot_n(x.data() + t0, x.data() + t0,
                              std::min(kHalfChunk, n - t0));
      return static_cast<W>(std::sqrt(static_cast<double>(s)));
    }
    W s0{0}, s1{0}, s2{0}, s3{0};
#pragma omp parallel for schedule(static) reduction(+ : s0, s1, s2, s3) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n - 3; i += 4) {
      const W v0 = static_cast<W>(x[i]), v1 = static_cast<W>(x[i + 1]);
      const W v2 = static_cast<W>(x[i + 2]), v3 = static_cast<W>(x[i + 3]);
      s0 += v0 * v0;
      s1 += v1 * v1;
      s2 += v2 * v2;
      s3 += v3 * v3;
    }
    for (std::ptrdiff_t i = n - (n % 4); i < n; ++i) {
      const W v = static_cast<W>(x[i]);
      s0 += v * v;
    }
    return static_cast<W>(std::sqrt(static_cast<double>((s0 + s1) + (s2 + s3))));
  } else {
    W s{0};
#pragma omp parallel for schedule(static) reduction(+ : s) if (n > parallel_threshold())
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const W v = static_cast<W>(x[i]);
      s += v * v;
    }
    return static_cast<W>(std::sqrt(static_cast<double>(s)));
  }
}

/// Infinity norm (always returned as double; used for diagnostics).
template <class T>
double nrm_inf(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double m = 0.0;
#pragma omp parallel for schedule(static) reduction(max : m) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const double v = std::fabs(static_cast<double>(x[i]));
    if (v > m) m = v;
  }
  return m;
}

/// Count of non-finite entries (inf/nan) — the fp16 overflow diagnostic.
template <class T>
std::size_t count_nonfinite(std::span<const T> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  std::size_t c = 0;
#pragma omp parallel for schedule(static) reduction(+ : c) if (n > parallel_threshold())
  for (std::ptrdiff_t i = 0; i < n; ++i)
    if (!std::isfinite(static_cast<double>(x[i]))) ++c;
  return c;
}

}  // namespace blas

/// Convenience: convert a whole vector to another precision.
template <class Dst, class Src>
std::vector<Dst> converted(const std::vector<Src>& x) {
  std::vector<Dst> y(x.size());
  blas::convert<Src, Dst>(std::span<const Src>(x), std::span<Dst>(y));
  return y;
}

}  // namespace nk
