// nkrylovd — the multi-client solver daemon.
//
//   nkrylovd --socket /tmp/nkrylov.sock [--threads 2] [--max-batch 32]
//            [--cache 32]
//
// Listens on a Unix-domain socket and serves the protocol documented in
// src/core/service/protocol.hpp: clients upload (or ask the daemon to
// generate) matrices, get back content-addressed handles, and stream
// right-hand sides at them.  Repeat matrices are never re-prepared, repeat
// (matrix, spec) pairs never re-factorized, and concurrent requests for
// the same pair merge into shared batched waves.  Exits on SIGINT/SIGTERM
// or a client SHUTDOWN, draining queued solves first.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "base/env.hpp"
#include "core/fault.hpp"
#include "core/service/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--threads N] [--max-batch K] [--cache C]\n",
               argv0);
  return 2;
}

/// Strict full-token int parse for argv (same checked-parse policy as the
/// wire and the env layer); returns false on garbage.
bool parse_int_arg(const char* s, long min, long max, long& out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v < min || v > max) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Fail before binding the socket if the operator asked for a backend
  // this build does not know — not after the first solve.
  nk::require_backend_env_cli();
  nk::service::ServerConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    long v = 0;
    if (arg == "--socket" && has_value) {
      cfg.socket_path = argv[++i];
    } else if (arg == "--threads" && has_value && parse_int_arg(argv[++i], 1, 256, v)) {
      cfg.executor.threads = static_cast<int>(v);
    } else if (arg == "--max-batch" && has_value && parse_int_arg(argv[++i], 1, 4096, v)) {
      cfg.executor.max_batch = static_cast<int>(v);
    } else if (arg == "--cache" && has_value && parse_int_arg(argv[++i], 1, 4096, v)) {
      cfg.executor.cache_capacity = static_cast<std::size_t>(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.socket_path.empty()) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon

  // The "fault" precond kind is inert unless a spec names it; having it
  // registered lets clients run resilience drills against a live daemon
  // (and the smoke test prove a poisoned request cannot take nkrylovd down).
  nk::register_fault_injection();

  try {
    nk::service::Server server(std::move(cfg));
    server.start();
    std::fprintf(stderr, "nkrylovd: listening on %s\n", server.socket_path().c_str());
    server.wait(&g_stop);
    std::fprintf(stderr, "nkrylovd: draining and shutting down\n");
    server.stop();
    std::fprintf(stderr, "nkrylovd: %s\n", server.stats_line().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nkrylovd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
