// Batched multi-RHS solving with reusable solver workspaces — the
// setup/solve lifecycle.
//
//   1. Prepare a problem once (generate → scale → multi-precision copies).
//   2. Build the preconditioner once (fp64 factorization, typed handles).
//   3. Solve a BATCH of right-hand sides through one solver: the matrix
//      and factor sweeps are shared across the batch (SpMM), and every
//      column agrees with the sequential solver on that column alone.
//   4. Re-run against a second matrix through the SAME SolverWorkspace:
//      the second setup performs zero allocation.
//
// Build: cmake --build build --target batched_solve
#include <cstdio>

#include "core/runner.hpp"
#include "nkrylov.hpp"

using namespace nk;

int main() {
  const int k = 8;

  // --- setup (once per matrix) -------------------------------------------
  PreparedProblem p = prepare_standin("ecology2", 1);
  auto m = make_primary(p, PrecondKind::BlockJacobiIluIc, 64);
  const std::size_t n = p.b.size();
  std::printf("problem %s: n=%d, nnz=%d, precond %s\n", p.name.c_str(),
              static_cast<int>(p.a->size()), static_cast<int>(p.a->csr_fp64().nnz()),
              m->name().c_str());

  // --- batched flat solve through the spec-driven facade ------------------
  std::vector<double> B = batch_rhs(p, k);
  std::vector<double> X(n * k, 0.0);
  Session cg(p, SolverSpec::parse("cg"), m);
  auto many = cg.solve_many(std::span<const double>(B), std::span<double>(X), k);
  std::printf("batched %s, %d RHS: %.3fs total (batch)\n", many[0].solver.c_str(), k,
              many[0].seconds);
  for (int c = 0; c < k; ++c)
    std::printf("  column %d: %s in %d iters, relres %.2e\n", c,
                many[c].converged ? "converged" : "FAILED", many[c].iterations,
                many[c].final_relres);

  // --- ragged waves: same batch, at most 4 columns in flight --------------
  // The compacting scheduler refills a retiring column's slot from the
  // pending queue, so one wave-sized workspace serves any RHS count and
  // every column still reproduces its sequential solve bit-for-bit.
  X.assign(n * k, 0.0);
  Session cg_waved(p, SolverSpec::parse("cg;wave=4"), m);
  auto waved = cg_waved.solve_many(std::span<const double>(B), std::span<double>(X), k);
  std::printf("same batch as 4-wide ragged waves: %.3fs, col0 %d iters (identical)\n",
              waved[0].seconds, waved[0].iterations);

  // --- batched nested solve sharing one workspace across two matrices ----
  SolverWorkspace ws;
  const Termination term = f3r_termination(1e-8);
  {
    X.assign(n * k, 0.0);  // fresh zero guess (X holds the CG solutions)
    NestedSolver s1(p.a, m, f3r_config(Prec::FP16), &ws);
    auto r = s1.solve_many(B.data(), static_cast<std::ptrdiff_t>(n), X.data(),
                           static_cast<std::ptrdiff_t>(n), k, term);
    std::printf("fp16-F3R batch on %s: col0 %s in %d outer iters (workspace %.1f MB, "
                "%llu allocations)\n",
                p.name.c_str(), r[0].converged ? "converged" : "failed", r[0].iterations,
                static_cast<double>(ws.bytes()) / 1e6,
                static_cast<unsigned long long>(ws.allocations()));
  }

  PreparedProblem p2 = prepare_standin("thermal2", 1);
  auto m2 = make_primary(p2, PrecondKind::BlockJacobiIluIc, 64);
  const auto allocs_before = ws.allocations();
  {
    std::vector<double> B2 = batch_rhs(p2, k);
    X.assign(p2.b.size() * k, 0.0);
    NestedSolver s2(p2.a, m2, f3r_config(Prec::FP16), &ws);
    auto r = s2.solve_many(B2.data(), static_cast<std::ptrdiff_t>(p2.b.size()), X.data(),
                           static_cast<std::ptrdiff_t>(p2.b.size()), k, term);
    std::printf("fp16-F3R batch on %s: col0 %s in %d outer iters, workspace "
                "re-allocations: %llu (zero = fully reused)\n",
                p2.name.c_str(), r[0].converged ? "converged" : "failed", r[0].iterations,
                static_cast<unsigned long long>(ws.allocations() - allocs_before));
  }
  return 0;
}
