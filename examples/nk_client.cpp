// nk_client — thin command-line client for nkrylovd.
//
//   nk_client SOCKET hello
//   nk_client SOCKET put-gen STANDIN SCALE        -> prints the handle line
//   nk_client SOCKET solve HANDLE N SPEC K [SEED] -> K seeded RHS, prints COLs
//   nk_client SOCKET solve-gen STANDIN SCALE SPEC K [SEED]
//   nk_client SOCKET stats
//   nk_client SOCKET free HANDLE
//   nk_client SOCKET raw 'LINE'                   -> one raw request line
//   nk_client SOCKET shutdown
//
// solve/solve-gen generate uniform-[0,1) right-hand sides client-side
// (seeded, so runs are reproducible) and print one line per column plus a
// checksum of the returned solutions.  `raw` exists for protocol smoke
// tests: it sends the line verbatim and prints the single reply line —
// malformed lines exercise the daemon's ERR path.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/env.hpp"
#include "base/rng.hpp"
#include "core/service/client.hpp"
#include "core/service/fingerprint.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nk_client SOCKET hello|put-gen|solve|solve-gen|stats|free|raw|shutdown "
               "[args...]\n");
  return 2;
}

void print_handle(const nk::service::Client::Handle& h) {
  std::printf("HANDLE %s n=%lld nnz=%lld %s\n", nk::service::fingerprint_hex(h.handle).c_str(),
              static_cast<long long>(h.n), static_cast<long long>(h.nnz),
              h.cached ? "CACHED" : "NEW");
}

int run_solve(nk::service::Client& client, std::uint64_t handle, std::int64_t n,
              const std::string& spec, int k, std::uint64_t seed) {
  std::vector<double> B(static_cast<std::size_t>(k) * static_cast<std::size_t>(n));
  for (int c = 0; c < k; ++c) {
    const auto col = nk::random_vector<double>(static_cast<std::size_t>(n),
                                               seed + static_cast<std::uint64_t>(c), 0.0, 1.0);
    std::copy(col.begin(), col.end(), B.begin() + static_cast<std::size_t>(c) * n);
  }
  const nk::service::Client::SolveReply reply = client.solve(handle, spec, B, k, n);
  int failed = 0;
  double checksum = 0.0;
  for (const nk::service::WireColumn& c : reply.columns) {
    std::printf("col %d: %s iters=%d relres=%.3e%s%s\n", c.col, c.status.c_str(), c.iterations,
                c.relres, c.failure.empty() ? "" : " site=", c.failure.c_str());
    if (!c.converged()) ++failed;
  }
  for (const double v : reply.x) checksum += v;
  std::printf("solutions checksum %.17g, %d/%d converged\n", checksum,
              k - failed, k);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Solves run daemon-side, but a typo'd NKRYLOV_BACKEND in the client's
  // environment is still the operator asking for something that does not
  // exist — same one-line exit(2) as every other front-end.
  nk::require_backend_env_cli();
  if (argc < 3) return usage();
  const std::string socket_path = argv[1];
  const std::string cmd = argv[2];
  try {
    nk::service::Client client(socket_path);
    if (cmd == "hello" && argc == 3) {
      std::printf("%s\n", client.hello().c_str());
    } else if (cmd == "put-gen" && argc == 5) {
      print_handle(client.put_standin(argv[3], std::atoi(argv[4])));
    } else if (cmd == "solve" && (argc == 7 || argc == 8)) {
      std::uint64_t handle = 0;
      if (!nk::service::parse_fingerprint_hex(argv[3], handle)) {
        std::fprintf(stderr, "nk_client: malformed handle '%s'\n", argv[3]);
        return 2;
      }
      const std::int64_t n = std::atoll(argv[4]);
      const int k = std::atoi(argv[6]);
      const std::uint64_t seed = argc == 8 ? std::strtoull(argv[7], nullptr, 10) : 7;
      return run_solve(client, handle, n, argv[5], k, seed);
    } else if (cmd == "solve-gen" && (argc == 7 || argc == 8)) {
      const nk::service::Client::Handle h = client.put_standin(argv[3], std::atoi(argv[4]));
      print_handle(h);
      const int k = std::atoi(argv[6]);
      const std::uint64_t seed = argc == 8 ? std::strtoull(argv[7], nullptr, 10) : 7;
      return run_solve(client, h.handle, h.n, argv[5], k, seed);
    } else if (cmd == "stats" && argc == 3) {
      for (const auto& [key, value] : client.stats())
        std::printf("%s=%llu\n", key.c_str(), static_cast<unsigned long long>(value));
    } else if (cmd == "free" && argc == 4) {
      std::uint64_t handle = 0;
      if (!nk::service::parse_fingerprint_hex(argv[3], handle)) {
        std::fprintf(stderr, "nk_client: malformed handle '%s'\n", argv[3]);
        return 2;
      }
      client.free_handle(handle);
      std::printf("OK\n");
    } else if (cmd == "raw" && argc == 4) {
      std::printf("%s\n", client.request_raw(argv[3]).c_str());
    } else if (cmd == "shutdown" && argc == 3) {
      client.shutdown_server();
      std::printf("OK\n");
    } else {
      return usage();
    }
  } catch (const nk::service::ProtocolError& e) {
    std::fprintf(stderr, "nk_client: server error [%s] %s\n", e.code().c_str(), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nk_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
