// Spec-driven solve — the whole descriptor API in one CLI:
//
//   ./solve_spec <matrix> [<spec>] [--scale=N] [--seed=S] [--sell] [--rhs=K]
//
// <matrix> is a Table 2 stand-in name ("hpcg_4_4_4", "ecology2", ...) or a
// Matrix Market file (anything ending in .mtx); <spec> is a solver spec
// string (default "f3r@fp16").  Examples:
//
//   ./solve_spec hpcg_4_4_4 f3r@fp16
//   ./solve_spec ecology2 "fgmres64/bj-ilu0@fp16"
//   ./solve_spec sherman.mtx "ir-gmres8@fp32;rtol=1e-6"
//   ./solve_spec hpcg_4_4_4 "cg/jacobi;wave=4" --rhs=8
//
// With --rhs=K the spec is solved for K seeded right-hand sides through
// Session::solve_many (one row per column).  Malformed or unknown specs
// exit 2 with the registered kinds listed.
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "core/session.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::require_backend_env_cli();
  nk::Options opt(argc, argv);
  if (opt.positional().empty() || opt.wants_help()) {
    std::cerr << "usage: solve_spec MATRIX [SPEC] [--scale=1] [--seed=7] [--sell] "
                 "[--rhs=K]\n"
                 "  MATRIX: stand-in name (e.g. hpcg_4_4_4) or a .mtx file\n"
                 "  SPEC:   solver spec string, default f3r@fp16\n";
    return opt.wants_help() ? 0 : 2;
  }
  const std::string matrix = opt.positional()[0];
  const std::string spec_text =
      opt.positional().size() > 1 ? opt.positional()[1] : opt.get("spec", "f3r@fp16");
  const bool use_sell = opt.get_bool("sell", false);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int64("seed", 7));
  const int rhs = opt.get_int("rhs", 1);

  const nk::SolverSpec spec = nk::parse_solver_spec_cli("spec", spec_text);

  nk::PreparedProblem p;
  try {
    if (matrix.size() > 4 && matrix.substr(matrix.size() - 4) == ".mtx") {
      nk::CsrMatrix<double> a = nk::read_matrix_market_file(matrix);
      const auto stats = nk::analyze(a);
      p = nk::prepare_problem(matrix, std::move(a), stats.numerically_symmetric, 1.0, 1.0,
                              seed, use_sell);
    } else {
      p = nk::prepare_standin(matrix, opt.get_int("scale", 1), seed, use_sell);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  // The grammar cannot know kind-specific value ranges (e.g. SSOR's
  // omega ∈ (0,2)); constructor rejections get the same one-line + exit(2)
  // treatment as parse errors.
  std::vector<nk::SolveResult> results;
  try {
    nk::Session session(std::move(p), spec);
    std::cout << "problem " << session.problem().name
              << ": n=" << session.problem().a->size()
              << ", nnz=" << session.problem().a->csr_fp64().nnz() << "\n";
    std::cout << "spec " << spec.to_string() << " -> solver " << session.solver_name()
              << ", M = " << session.precond().name() << "\n";
    if (rhs > 1) {
      const std::vector<double> B = session.make_rhs_batch(rhs);
      std::vector<double> X(B.size(), 0.0);
      results = session.solve_many(std::span<const double>(B), std::span<double>(X), rhs);
    } else {
      results.push_back(session.solve());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: invalid spec '" << spec_text << "' for --spec: " << e.what()
              << "\n";
    return 2;
  }

  nk::Table t({"rhs", "solver", "conv", "outer-its", "restarts", "M-applies", "SpMVs",
               "time[s]", "relres"});
  for (std::size_t c = 0; c < results.size(); ++c) {
    const nk::SolveResult& r = results[c];
    t.add_row({std::to_string(c), r.solver, r.converged ? "yes" : "NO",
               nk::Table::fmt_int(r.iterations), nk::Table::fmt_int(r.restarts),
               nk::Table::fmt_int(static_cast<long long>(r.precond_invocations)),
               nk::Table::fmt_int(static_cast<long long>(r.spmv_count)),
               nk::Table::fmt(r.seconds, 3), nk::Table::fmt_sci(r.final_relres)});
  }
  t.print(std::cout);

  bool all = true;
  for (const auto& r : results) all = all && r.converged;
  return all ? 0 : 1;
}
