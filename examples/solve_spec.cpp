// Spec-driven solve — the whole descriptor API in one CLI:
//
//   ./solve_spec <matrix> [<spec>] [--scale=N] [--seed=S] [--sell] [--rhs=K]
//
// <matrix> is a Table 2 stand-in name ("hpcg_4_4_4", "ecology2", ...) or a
// Matrix Market file (anything ending in .mtx); <spec> is a solver spec
// string (default "f3r@fp16").  Examples:
//
//   ./solve_spec hpcg_4_4_4 f3r@fp16
//   ./solve_spec ecology2 "fgmres64/bj-ilu0@fp16"
//   ./solve_spec sherman.mtx "ir-gmres8@fp32;rtol=1e-6"
//   ./solve_spec hpcg_4_4_4 "cg/jacobi;wave=4" --rhs=8
//   ./solve_spec ecology2 auto                 (the autotuner picks)
//   ./solve_spec --list
//
// With --rhs=K the spec is solved for K seeded right-hand sides through
// Session::solve_many (one row per column).  --list prints every
// registered solver and preconditioner kind with its registry metadata
// (the strings the SPEC grammar accepts).  Malformed or unknown specs
// exit 2 with the registered kinds listed.
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "core/fingerprint.hpp"
#include "core/session.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/stats.hpp"

namespace {

/// `--list`: the registry's contents as two metadata tables — the
/// discovery surface for "what can a spec string say on this build".
int list_kinds() {
  nk::Registry& reg = nk::registry();
  nk::Table st({"kind", "m?", "default-m", "@prec?", "conf?", "backends", "summary"});
  for (const std::string& kind : reg.solver_kinds()) {
    const nk::SolverKindInfo* info = reg.solver_info(kind);
    std::string backends;
    for (const nk::Backend be : info->backends)
      backends += std::string(backends.empty() ? "" : ",") + nk::backend_name(be);
    st.add_row({kind, info->takes_m ? "yes" : "no",
                info->takes_m ? nk::Table::fmt_int(info->default_m) : "-",
                info->takes_prec ? "yes" : "no", info->conformance ? "yes" : "no",
                backends, info->summary});
  }
  std::cout << "solver kinds:\n";
  st.print(std::cout);

  nk::Table pt({"kind", "conf?", "summary"});
  for (const std::string& kind : reg.precond_kinds()) {
    const nk::PrecondKindInfo* info = reg.precond_info(kind);
    pt.add_row({kind, info->conformance ? "yes" : "no", info->summary});
  }
  std::cout << "\npreconditioner kinds:\n";
  pt.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nk::require_backend_env_cli();
  nk::Options opt(argc, argv);
  if (opt.get_bool("list", false)) return list_kinds();
  if (opt.positional().empty() || opt.wants_help()) {
    std::cerr << "usage: solve_spec MATRIX [SPEC] [--scale=1] [--seed=7] [--sell] "
                 "[--rhs=K]\n"
                 "       solve_spec --list\n"
                 "  MATRIX: stand-in name (e.g. hpcg_4_4_4) or a .mtx file\n"
                 "  SPEC:   solver spec string, default f3r@fp16\n"
                 "  --list: print the registered solver/preconditioner kinds\n";
    return opt.wants_help() ? 0 : 2;
  }
  const std::string matrix = opt.positional()[0];
  const std::string spec_text =
      opt.positional().size() > 1 ? opt.positional()[1] : opt.get("spec", "f3r@fp16");
  const bool use_sell = opt.get_bool("sell", false);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int64("seed", 7));
  const int rhs = opt.get_int("rhs", 1);

  const nk::SolverSpec spec = nk::parse_solver_spec_cli("spec", spec_text);

  nk::PreparedProblem p;
  try {
    if (matrix.size() > 4 && matrix.substr(matrix.size() - 4) == ".mtx") {
      nk::CsrMatrix<double> a = nk::read_matrix_market_file(matrix);
      const auto stats = nk::analyze(a);
      p = nk::prepare_problem(matrix, std::move(a), stats.numerically_symmetric, 1.0, 1.0,
                              seed, use_sell);
    } else {
      p = nk::prepare_standin(matrix, opt.get_int("scale", 1), seed, use_sell);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  // The grammar cannot know kind-specific value ranges (e.g. SSOR's
  // omega ∈ (0,2)); constructor rejections get the same one-line + exit(2)
  // treatment as parse errors.
  std::vector<nk::SolveResult> results;
  try {
    nk::Session session(std::move(p), spec);
    std::cout << "problem " << session.problem().name
              << ": n=" << session.problem().a->size()
              << ", nnz=" << session.problem().a->csr_fp64().nnz()
              << ", fingerprint=" << nk::fingerprint_hex(session.problem().fingerprint)
              << "\n";
    std::cout << "spec " << spec.to_string() << " -> solver " << session.solver_name()
              << ", M = " << session.precond().name() << "\n";
    if (rhs > 1) {
      const std::vector<double> B = session.make_rhs_batch(rhs);
      std::vector<double> X(B.size(), 0.0);
      results = session.solve_many(std::span<const double>(B), std::span<double>(X), rhs);
    } else {
      results.push_back(session.solve());
    }
  } catch (const std::exception& e) {
    std::cerr << "error: invalid spec '" << spec_text << "' for --spec: " << e.what()
              << "\n";
    return 2;
  }

  nk::Table t({"rhs", "solver", "conv", "outer-its", "restarts", "M-applies", "SpMVs",
               "time[s]", "relres"});
  for (std::size_t c = 0; c < results.size(); ++c) {
    const nk::SolveResult& r = results[c];
    t.add_row({std::to_string(c), r.solver, r.converged ? "yes" : "NO",
               nk::Table::fmt_int(r.iterations), nk::Table::fmt_int(r.restarts),
               nk::Table::fmt_int(static_cast<long long>(r.precond_invocations)),
               nk::Table::fmt_int(static_cast<long long>(r.spmv_count)),
               nk::Table::fmt(r.seconds, 3), nk::Table::fmt_sci(r.final_relres)});
  }
  t.print(std::cout);

  bool all = true;
  for (const auto& r : results) all = all && r.converged;
  return all ? 0 : 1;
}
