// Mixed-precision tour: run every solver family of the paper on one
// problem and print the comparison the paper's Figure 1 makes per matrix —
// fp64/fp32/fp16-F3R, fp{64,32,16}-CG (or BiCGStab when nonsymmetric), and
// fp{64,32,16}-FGMRES(64).
//
// Run:  ./mixed_precision_tour [--problem=hpcg_5_5_5] [--scale=1]
//       [--gpu-sim] (sliced-ELLPACK + SD-AINV instead of CSR + ILU/IC)
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "base/table.hpp"
#include "core/runner.hpp"
#include "core/variants.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  const std::string name = opt.get("problem", "hpcg_5_5_5");
  const int scale = opt.get_int("scale", 1);
  const bool gpu_sim = opt.get_bool("gpu-sim", false);
  const double rtol = opt.get_double("rtol", 1e-8);
  const int max_iters = opt.get_int("max-iters", 19200);

  std::cout << "nkrylov mixed-precision tour (" << nk::env_summary() << ")\n";
  nk::PreparedProblem p = nk::prepare_standin(name, scale, 7, gpu_sim);
  std::cout << "problem " << p.name << ": n=" << p.a->size()
            << " nnz=" << p.a->csr_fp64().nnz() << (p.symmetric ? " symmetric" : " nonsymmetric")
            << (gpu_sim ? " [GPU-sim: SELL-32 + SD-AINV]" : " [CPU: CSR + block-Jacobi ILU/IC]")
            << "\n";

  auto m = nk::make_primary(p, gpu_sim ? nk::PrecondKind::SdAinv
                                       : nk::PrecondKind::BlockJacobiIluIc);

  nk::FlatSolverCaps caps;
  caps.rtol = rtol;
  caps.max_iters = max_iters;

  nk::Table table({"solver", "converged", "outer-its", "M-applies", "time[s]", "relres"});
  auto add = [&](const nk::SolveResult& r) {
    table.add_row({r.solver, r.converged ? "yes" : "NO", nk::Table::fmt_int(r.iterations),
                   nk::Table::fmt_int(static_cast<long long>(r.precond_invocations)),
                   nk::Table::fmt(r.seconds, 4), nk::Table::fmt_sci(r.final_relres)});
  };

  // The three F3R precision configurations.
  for (nk::Prec prec : {nk::Prec::FP64, nk::Prec::FP32, nk::Prec::FP16})
    add(nk::run_nested(p, m, nk::f3r_config(prec), nk::f3r_termination(rtol)));

  // The paper's conventional baselines with fp64/fp32/fp16 preconditioners.
  for (nk::Prec st : {nk::Prec::FP64, nk::Prec::FP32, nk::Prec::FP16}) {
    if (p.symmetric)
      add(nk::run_cg(p, *m, st, caps));
    else
      add(nk::run_bicgstab(p, *m, st, caps));
    add(nk::run_fgmres_restarted(p, *m, st, 64, caps));
  }

  table.print(std::cout);
  return 0;
}
