// Matrix Market CLI solver: run any of the paper's solver configurations
// on a user-supplied .mtx file.  Users with the real SuiteSparse
// collection can reproduce the paper's per-matrix rows exactly:
//
//   ./mm_solve ecology2.mtx --solver=fp16-F3R
//   ./mm_solve atmosmodd.mtx --solver=fp16-BiCGStab --alpha=1.0
//   ./mm_solve audikw_1.mtx --solver=fp16-F3R --gpu-sim --alpha=1.6
//
// Solvers: {fp64,fp32,fp16}-F3R, {fp64,fp32,fp16}-{CG,BiCGStab,FGMRES64},
//          F2, fp16-F2, F3, fp16-F3, F4.
#include <iostream>

#include "base/options.hpp"
#include "core/runner.hpp"
#include "core/variants.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  if (opt.positional().empty() || opt.wants_help()) {
    std::cerr << "usage: mm_solve FILE.mtx [--solver=fp16-F3R] [--rtol=1e-8]\n"
                 "         [--alpha=1.0] [--nblocks=64] [--gpu-sim] [--max-iters=19200]\n";
    return opt.wants_help() ? 0 : 2;
  }
  const std::string path = opt.positional()[0];
  const std::string solver = opt.get("solver", "fp16-F3R");
  const double rtol = opt.get_double("rtol", 1e-8);
  const double alpha = opt.get_double("alpha", 1.0);
  const bool gpu_sim = opt.get_bool("gpu-sim", false);

  nk::CsrMatrix<double> a;
  try {
    a = nk::read_matrix_market_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const auto stats = nk::analyze(a);
  std::cout << path << ": " << nk::stats_summary(stats) << "\n";

  auto p = nk::prepare_problem(path, std::move(a), stats.numerically_symmetric, alpha, alpha,
                               opt.get_int64("seed", 7), gpu_sim);
  auto m = nk::make_primary(p, gpu_sim ? nk::PrecondKind::SdAinv
                                       : nk::PrecondKind::BlockJacobiIluIc,
                            opt.get_int("nblocks", 64));

  nk::FlatSolverCaps caps;
  caps.rtol = rtol;
  caps.max_iters = opt.get_int("max-iters", 19200);

  nk::SolveResult res;
  auto starts_with = [&](const char* s) { return solver.rfind(s, 0) == 0; };
  try {
    if (solver.size() > 4 && solver.substr(4) == "-F3R" && solver != "fp16-F3R-best") {
      res = nk::run_nested(p, m, nk::f3r_config(nk::parse_prec(solver.substr(0, 4))),
                           nk::f3r_termination(rtol));
    } else if (solver == "fp16-F3R-best") {
      res = nk::run_f3r_best(p, m, rtol).result;
    } else if (solver == "F2" || solver == "fp16-F2" || solver == "F3" ||
               solver == "fp16-F3" || solver == "F4") {
      res = nk::run_nested(p, m, nk::variant_config(solver), nk::f3r_termination(rtol));
    } else if (starts_with("fp") && solver.find("-CG") != std::string::npos) {
      res = nk::run_cg(p, *m, nk::parse_prec(solver.substr(0, 4)), caps);
    } else if (starts_with("fp") && solver.find("-BiCGStab") != std::string::npos) {
      res = nk::run_bicgstab(p, *m, nk::parse_prec(solver.substr(0, 4)), caps);
    } else if (starts_with("fp") && solver.find("-FGMRES") != std::string::npos) {
      res = nk::run_fgmres_restarted(p, *m, nk::parse_prec(solver.substr(0, 4)), 64, caps);
    } else {
      std::cerr << "error: unknown solver '" << solver << "'\n";
      return 2;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cout << summarize(res) << "\n";
  return res.converged ? 0 : 1;
}
