// Matrix Market CLI solver: run any solver configuration the registry
// knows on a user-supplied .mtx file.  Users with the real SuiteSparse
// collection can reproduce the paper's per-matrix rows exactly:
//
//   ./mm_solve ecology2.mtx --solver=f3r@fp16
//   ./mm_solve atmosmodd.mtx --solver=bicgstab@fp16 --alpha=1.0
//   ./mm_solve audikw_1.mtx --solver=fp16-F3R --gpu-sim --alpha=1.6
//
// --solver takes a spec string (see core/spec.hpp): "f3r@fp16",
// "fgmres64", "ir-gmres8@fp32", the Table 4 variants ("F2", "fp16-F3",
// ...), and the paper's legacy names ("fp16-CG", "fp32-F3R") all parse.
// An unknown solver prints a one-line error naming the registered kinds
// and exits 2.  The preconditioner is chosen by --gpu-sim (SD-AINV) vs
// default (block-Jacobi ILU(0)/IC(0)); a "/precond" part in the spec
// overrides it.
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "core/runner.hpp"
#include "sparse/io_matrix_market.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::require_backend_env_cli();
  nk::Options opt(argc, argv);
  if (opt.positional().empty() || opt.wants_help()) {
    std::cerr << "usage: mm_solve FILE.mtx [--solver=f3r@fp16] [--rtol=1e-8]\n"
                 "         [--alpha=1.0] [--nblocks=64] [--gpu-sim] [--max-iters=19200]\n";
    return opt.wants_help() ? 0 : 2;
  }
  const std::string path = opt.positional()[0];
  const std::string solver = opt.get("solver", "f3r@fp16");
  const double rtol = opt.get_double("rtol", 1e-8);
  const double alpha = opt.get_double("alpha", 1.0);
  const bool gpu_sim = opt.get_bool("gpu-sim", false);

  nk::CsrMatrix<double> a;
  try {
    a = nk::read_matrix_market_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const auto stats = nk::analyze(a);
  std::cout << path << ": " << nk::stats_summary(stats) << "\n";

  auto p = nk::prepare_problem(path, std::move(a), stats.numerically_symmetric, alpha, alpha,
                               opt.get_int64("seed", 7), gpu_sim);

  nk::SolveResult res;
  if (solver == "fp16-F3R-best") {  // a search over specs, not a spec itself
    auto m = nk::make_primary(p, gpu_sim ? nk::PrecondKind::SdAinv
                                         : nk::PrecondKind::BlockJacobiIluIc,
                              opt.get_int("nblocks", 64));
    res = nk::run_f3r_best(p, m, rtol).result;
  } else {
    // Malformed/unknown --solver values exit(2) with the registered kinds
    // listed — same discipline as the numeric flag parsers.  Dedicated
    // flags override the spec's options only when actually given, so
    // --solver="cg;rtol=1e-4" keeps its in-spec settings.
    nk::SolverSpec spec = nk::parse_solver_spec_cli("solver", solver);
    if (opt.has("rtol")) spec.rtol = rtol;
    if (opt.has("max-iters")) spec.max_iters = opt.get_int("max-iters", 19200);
    if (solver.find('/') == std::string::npos) {
      // No explicit precond in the spec: --gpu-sim picks the paper's node.
      spec.precond.kind = gpu_sim ? "sd-ainv" : "bj";
    }
    if (opt.has("nblocks") || spec.precond.nblocks == 0)
      spec.precond.nblocks = opt.get_int("nblocks", 64);
    try {  // constructor-rejected values (e.g. ssor omega out of range)
      nk::Session session(std::move(p), spec);
      std::cout << "solver " << session.solver_name() << " = " << spec.to_string()
                << " (M = " << session.precond().name() << ")\n";
      res = session.solve();
    } catch (const std::exception& e) {
      std::cerr << "error: invalid spec '" << solver << "' for --solver: " << e.what()
                << "\n";
      return 2;
    }
  }
  std::cout << summarize(res) << "\n";
  return res.converged ? 0 : 1;
}
