// Quickstart: solve an HPCG-style Poisson problem with fp16-F3R.
//
// Demonstrates the complete public API path:
//   1. generate (or load) a matrix,
//   2. prepare the problem (diagonal scaling + RHS),
//   3. build the primary preconditioner (block-Jacobi IC(0) here),
//   4. build the nested solver from a config, and solve.
//
// Run:  ./quickstart [--l=5] [--prec=fp16] [--rtol=1e-8]
#include <cstdio>
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "core/runner.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  const int l = opt.get_int("l", 5);             // grid is 2^l per axis
  const nk::Prec prec = nk::parse_prec(opt.get("prec", "fp16"));
  const double rtol = opt.get_double("rtol", 1e-8);

  std::cout << "nkrylov quickstart (" << nk::env_summary() << ")\n";

  // 1. The HPCG 27-point stencil matrix on a (2^l)^3 grid.
  nk::CsrMatrix<double> a = nk::gen::hpcg(l, l, l);
  std::cout << "matrix " << nk::gen::stencil_name("hpcg", l, l, l) << ": "
            << nk::stats_summary(nk::analyze(a)) << "\n";

  // 2. Diagonal scaling + uniform-[0,1) right-hand side (the paper's setup).
  nk::PreparedProblem p = nk::prepare_problem("hpcg", std::move(a), /*symmetric=*/true,
                                              /*alpha_ilu=*/1.0, /*alpha_ainv=*/1.0,
                                              /*rhs_seed=*/7);

  // 3. Primary preconditioner M: block-Jacobi IC(0) (CPU-node setting).
  auto m = nk::make_primary(p, nk::PrecondKind::BlockJacobiIluIc);

  // 4. F3R at the requested lowest precision: (F^100, F^8, F^4, R^2, M).
  const nk::NestedConfig cfg = nk::f3r_config(prec);
  std::cout << "solver " << cfg.name << " = " << nk::tuple_notation(cfg) << "\n";

  nk::SolveResult res = nk::run_nested(p, m, cfg, nk::f3r_termination(rtol));
  std::cout << summarize(res) << "\n";
  if (!res.history.empty()) {
    std::cout << "residual history (outer iterations):";
    for (std::size_t i = 0; i < res.history.size(); i += std::max<std::size_t>(1, res.history.size() / 8))
      std::printf(" %.1e", res.history[i]);
    std::printf(" ... %.1e\n", res.history.back());
  }
  return res.converged ? 0 : 1;
}
