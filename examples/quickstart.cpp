// Quickstart: solve an HPCG-style Poisson problem with fp16-F3R.
//
// Demonstrates the complete public API path:
//   1. generate (or load) a matrix,
//   2. prepare the problem (diagonal scaling + RHS),
//   3. name the solver configuration as a spec string,
//   4. build a Session (preconditioner + solver from the spec) and solve.
//
// Run:  ./quickstart [--l=5] [--spec=f3r@fp16] [--rtol=1e-8]
#include <cstdio>
#include <iostream>

#include "base/env.hpp"
#include "base/options.hpp"
#include "core/session.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  const int l = opt.get_int("l", 5);             // grid is 2^l per axis
  // --prec is folded into the default spec; validate it under its own name
  // so a bad value is not reported against a --spec the user never typed.
  const std::string prec = opt.get("prec", "fp16");
  if (opt.has("prec")) {
    try {
      nk::parse_prec(prec);
    } catch (const std::invalid_argument&) {
      std::cerr << "error: invalid value '" << prec << "' for --prec (fp64|fp32|fp16)\n";
      return 2;
    }
  }
  const std::string spec_text = opt.get("spec", "f3r@" + prec);

  std::cout << "nkrylov quickstart (" << nk::env_summary() << ")\n";

  // 1. The HPCG 27-point stencil matrix on a (2^l)^3 grid.
  nk::CsrMatrix<double> a = nk::gen::hpcg(l, l, l);
  std::cout << "matrix " << nk::gen::stencil_name("hpcg", l, l, l) << ": "
            << nk::stats_summary(nk::analyze(a)) << "\n";

  // 2. Diagonal scaling + uniform-[0,1) right-hand side (the paper's setup).
  nk::PreparedProblem p = nk::prepare_problem("hpcg", std::move(a), /*symmetric=*/true,
                                              /*alpha_ilu=*/1.0, /*alpha_ainv=*/1.0,
                                              /*rhs_seed=*/7);

  // 3.+4. One spec string names the whole stack — F3R at the requested
  // lowest precision over the default block-Jacobi IC(0); Session builds
  // the preconditioner and solver from it.
  nk::SolverSpec spec = nk::parse_solver_spec_cli("spec", spec_text);
  spec.rtol = opt.get_double("rtol", spec.rtol);
  nk::Session session(std::move(p), spec);
  std::cout << "spec " << spec.to_string() << " -> solver " << session.solver_name()
            << ", M = " << session.precond().name() << "\n";

  nk::SolveResult res = session.solve();
  std::cout << summarize(res) << "\n";
  if (!res.history.empty()) {
    std::cout << "residual history (outer iterations):";
    for (std::size_t i = 0; i < res.history.size(); i += std::max<std::size_t>(1, res.history.size() / 8))
      std::printf(" %.1e", res.history[i]);
    std::printf(" ... %.1e\n", res.history.back());
  }
  return res.converged ? 0 : 1;
}
