// Domain scenario: steady-state heat conduction (3-D Poisson) with a
// localized source — the workload class behind HPCG and the paper's SPD
// matrices.  Solves  -Δu = f  on the unit cube with a Gaussian source at
// the center, once per F3R precision configuration, and verifies that all
// three produce the same physical answer (peak temperature and its
// location) while costing different amounts of time.
//
// Run:  ./poisson3d [--n=48] [--rtol=1e-8]
#include <cmath>
#include <iostream>

#include "base/options.hpp"
#include "base/table.hpp"
#include "core/runner.hpp"
#include "sparse/gen/laplace.hpp"
#include "sparse/scaling.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  const nk::index_t n = opt.get_int("n", 48);
  const double rtol = opt.get_double("rtol", 1e-8);

  std::cout << "3-D Poisson heat problem on a " << n << "^3 grid (" << n * n * n
            << " unknowns)\n";

  // Assemble -Δu = f with a Gaussian heat source at the cube center.
  nk::CsrMatrix<double> a = nk::gen::laplace3d(n, n, n);
  const double h = 1.0 / (n + 1);
  std::vector<double> f(static_cast<std::size_t>(n) * n * n);
  for (nk::index_t z = 0; z < n; ++z)
    for (nk::index_t y = 0; y < n; ++y)
      for (nk::index_t x = 0; x < n; ++x) {
        const double dx = (x + 1) * h - 0.5, dy = (y + 1) * h - 0.5, dz = (z + 1) * h - 0.5;
        const double r2 = dx * dx + dy * dy + dz * dz;
        f[(z * n + y) * n + x] = h * h * std::exp(-100.0 * r2);  // scaled source
      }

  // The solver works on the diagonally scaled system à x̃ = b̃ with
  // b̃ = S b, x = S x̃ (S = D^{-1/2}); see sparse/scaling.hpp.
  auto scaled = a;
  const auto sres = nk::diagonal_scale_symmetric(scaled);
  std::vector<double> b = f;
  nk::apply_scale(sres.scale, b);

  nk::PreparedProblem p;
  p.name = "poisson3d";
  p.symmetric = true;
  p.a = std::make_shared<nk::MultiPrecMatrix>(std::move(scaled));
  p.b = b;

  auto m = nk::make_primary(p, nk::PrecondKind::BlockJacobiIluIc, 16);

  nk::Table t({"solver", "outer-its", "M-applies", "time[s]", "relres", "peak-u", "peak-at"});
  for (nk::Prec prec : {nk::Prec::FP64, nk::Prec::FP32, nk::Prec::FP16}) {
    nk::NestedSolver solver(p.a, m, nk::f3r_config(prec));
    std::vector<double> xt(p.b.size(), 0.0);
    const std::uint64_t c0 = m->invocations();
    auto res = solver.solve(std::span<const double>(p.b), std::span<double>(xt),
                            nk::f3r_termination(rtol));
    res.precond_invocations = m->invocations() - c0;
    if (!res.converged) {
      std::cerr << res.solver << " failed to converge\n";
      return 1;
    }
    // Map back to physical u and find the hottest point.
    nk::apply_scale(sres.scale, xt);
    double peak = 0.0;
    std::size_t at = 0;
    for (std::size_t i = 0; i < xt.size(); ++i)
      if (xt[i] > peak) {
        peak = xt[i];
        at = i;
      }
    const auto ax = static_cast<nk::index_t>(at % n);
    const auto ay = static_cast<nk::index_t>((at / n) % n);
    const auto az = static_cast<nk::index_t>(at / (static_cast<std::size_t>(n) * n));
    t.add_row({res.solver, nk::Table::fmt_int(res.iterations),
               nk::Table::fmt_int(static_cast<long long>(res.precond_invocations)),
               nk::Table::fmt(res.seconds, 3), nk::Table::fmt_sci(res.final_relres),
               nk::Table::fmt_sci(peak, 4),
               "(" + std::to_string(ax) + "," + std::to_string(ay) + "," +
                   std::to_string(az) + ")"});
  }
  t.print(std::cout);
  std::cout << "all precisions must agree on the peak location (grid center ~"
            << (n - 1) / 2 << ") and on peak-u to ~6 digits: the precision\n"
            << "reduction lives inside the solver, not in the answer.\n";
  return 0;
}
