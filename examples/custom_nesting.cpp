// Build-your-own nested solver: uses the Section 4.1 memory-access model
// to derive a nesting for a given matrix (as the paper derives F3R from
// F^64), then assembles it with the NestedConfig API, runs it against F3R
// and the flat baseline, and reports whether the model's prediction held.
//
// Run:  ./custom_nesting [--problem=hpgmp_5_5_5] [--budget=64]
#include <iostream>

#include "base/options.hpp"
#include "base/table.hpp"
#include "core/cost_model.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  nk::Options opt(argc, argv);
  const std::string problem = opt.get("problem", "hpgmp_5_5_5");
  const int budget = opt.get_int("budget", 64);  // primary applications per outer iter
  const double rtol = opt.get_double("rtol", 1e-8);

  auto p = nk::prepare_standin(problem, opt.get_int("scale", 1));
  auto m = nk::make_primary(p, nk::PrecondKind::BlockJacobiIluIc, 64);
  std::cout << "problem " << p.name << ": n=" << p.a->size()
            << ", nnz/row=" << nk::Table::fmt(p.a->csr_fp64().nnz_per_row(), 1) << "\n";

  // 1. Ask the model how to split a budget of `budget` primary
  //    applications (the paper's reference point is F^64).
  const double ca = nk::access_constant(p.a->csr_fp64().nnz_per_row(), 8);
  const auto advice = nk::advise_split(ca, ca, budget);
  std::cout << "cost model: " << nk::advice_summary(advice) << "\n";

  // 2. Assemble the advised two-level tuple, mapping precisions like F3R
  //    does: fp32 second level; fp16 for a Richardson innermost.
  nk::NestedConfig custom;
  custom.name = "advised";
  nk::LevelSpec outer;  // fp64 FGMRES, paper-style outermost
  outer.m = 100;
  custom.levels.push_back(outer);
  if (advice.split) {
    nk::LevelSpec mid;
    mid.m = advice.m_outer;
    mid.mat = nk::Prec::FP32;
    mid.vec = nk::Prec::FP32;
    custom.levels.push_back(mid);
    nk::LevelSpec inner;
    inner.kind = advice.inner_kind == 'R' ? nk::SolverKind::Richardson
                                          : nk::SolverKind::FGMRES;
    inner.m = advice.m_inner;
    inner.mat = nk::Prec::FP16;
    inner.vec = advice.inner_kind == 'R' ? nk::Prec::FP16 : nk::Prec::FP32;
    custom.levels.push_back(inner);
    custom.precond_storage = nk::Prec::FP16;
  } else {
    custom.levels[0].m = budget;
  }
  std::cout << "assembled " << custom.name << " = " << nk::tuple_notation(custom) << "\n";

  // 3. Race it against fp16-F3R and the flat FGMRES(budget) baseline.
  nk::Table t({"solver", "tuple", "outer-its", "M-applies", "time[s]", "conv"});
  auto row = [&](const nk::SolveResult& r, const std::string& tuple) {
    t.add_row({r.solver, tuple, nk::Table::fmt_int(r.iterations),
               nk::Table::fmt_int(static_cast<long long>(r.precond_invocations)),
               nk::Table::fmt(r.seconds, 3), r.converged ? "yes" : "NO"});
  };
  row(nk::run_nested(p, m, custom, nk::f3r_termination(rtol)), nk::tuple_notation(custom));
  row(nk::run_nested(p, m, nk::f3r_config(nk::Prec::FP16), nk::f3r_termination(rtol)),
      "(F^100, F^8, F^4, R^2, M)");
  nk::FlatSolverCaps caps;
  caps.rtol = rtol;
  caps.max_iters = opt.get_int("max-iters", 5000);
  row(nk::run_fgmres_restarted(p, *m, nk::Prec::FP64, budget, caps),
      "(F^" + std::to_string(budget) + ", M) restarted");
  t.print(std::cout);
  return 0;
}
